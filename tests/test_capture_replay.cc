/** @file Tests for the access-stream capture/replay path
 *  (src/harness/capture): a same-config replay must reproduce the
 *  live run's memory-system behaviour exactly, damaged or mismatched
 *  captures must be rejected up front, and a capture from one scheme
 *  must be able to drive another (trace-driven scheme sweeps). */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/runner.hh"
#include "obs/bintrace.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

RunOptions
baseOptions()
{
    setQuiet(true);
    RunOptions opts;
    opts.maxInstructions = 60'000;
    opts.seed = 7;
    return opts;
}

RunResult
runCaptured(const char *workload, PrefetchScheme scheme,
            const std::string &capture_path)
{
    SimConfig config;
    config.scheme = scheme;
    RunOptions opts = baseOptions();
    opts.capturePath = capture_path;
    return runWorkload(workload, config, opts);
}

RunResult
runReplayed(const char *workload, PrefetchScheme scheme,
            const std::string &replay_path)
{
    SimConfig config;
    config.scheme = scheme;
    RunOptions opts = baseOptions();
    opts.replayPath = replay_path;
    return runWorkload(workload, config, opts);
}

/** Counters under @p prefix from a snapshot, as one diffable map. */
std::map<std::string, uint64_t>
countersWithPrefix(const obs::StatSnapshot &stats,
                   const std::string &prefix)
{
    std::map<std::string, uint64_t> out;
    for (const auto &[name, value] : stats.counters) {
        if (name.rfind(prefix, 0) == 0)
            out.emplace(name, value);
    }
    return out;
}

TEST(CaptureReplay, CaptureProducesFinalizedAccessContainer)
{
    const std::string path = tempPath("grp_cap_basic.grpbin");
    const RunResult live =
        runCaptured("mcf", PrefetchScheme::GrpVar, path);
    ASSERT_GT(live.instructions, 0u);

    std::ifstream is(path, std::ios::binary);
    ASSERT_TRUE(is.is_open());
    std::ostringstream text;
    text << is.rdbuf();
    const std::string data = text.str();

    obs::bintrace::Container container;
    std::string error;
    ASSERT_TRUE(obs::bintrace::parseContainer(data, container, &error))
        << error;
    EXPECT_EQ(container.kind, obs::bintrace::StreamKind::Access);
    EXPECT_TRUE(container.finalized);
    EXPECT_GT(container.totalRecords, 0u);
    ASSERT_TRUE(container.metaValue("workload").has_value());
    EXPECT_EQ(*container.metaValue("workload"), "mcf");
    ASSERT_TRUE(container.metaValue("seed").has_value());
    EXPECT_EQ(*container.metaValue("seed"), "7");
    // No .tmp left behind once the run closed the capture.
    EXPECT_FALSE(std::ifstream(path + ".tmp").is_open());
}

TEST(CaptureReplay, SameConfigReplayIsExact)
{
    // The tentpole fidelity claim: replaying a capture under the
    // same (workload, scheme, seed) reproduces every mem.* and
    // cpu.* counter exactly, not approximately.
    const std::string path = tempPath("grp_cap_exact.grpbin");
    const RunResult live =
        runCaptured("mcf", PrefetchScheme::GrpVar, path);
    const RunResult replay =
        runReplayed("mcf", PrefetchScheme::GrpVar, path);

    EXPECT_EQ(live.instructions, replay.instructions);
    EXPECT_EQ(live.cycles, replay.cycles);
    EXPECT_EQ(live.l2MissesTotal, replay.l2MissesTotal);
    EXPECT_EQ(live.prefetchFills, replay.prefetchFills);
    EXPECT_EQ(live.usefulPrefetches, replay.usefulPrefetches);

    EXPECT_EQ(countersWithPrefix(live.stats, "mem."),
              countersWithPrefix(replay.stats, "mem."));
    EXPECT_EQ(countersWithPrefix(live.stats, "cpu."),
              countersWithPrefix(replay.stats, "cpu."));
}

TEST(CaptureReplay, ReplayIsDeterministic)
{
    // Two replays of the same capture agree with each other too.
    const std::string path = tempPath("grp_cap_det.grpbin");
    runCaptured("equake", PrefetchScheme::Srp, path);
    const RunResult a =
        runReplayed("equake", PrefetchScheme::Srp, path);
    const RunResult b =
        runReplayed("equake", PrefetchScheme::Srp, path);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(countersWithPrefix(a.stats, "mem."),
              countersWithPrefix(b.stats, "mem."));
}

TEST(CaptureReplay, CrossSchemeReplaySmoke)
{
    // The capture is scheme-independent (the interpreter emits every
    // op regardless; the CPU filters), so one recording can drive a
    // scheme sweep. Timing differs across schemes, so the consumer
    // may fetch one fewer op at the instruction-cap tail — this is a
    // smoke test, not an exactness test.
    const std::string path = tempPath("grp_cap_cross.grpbin");
    const RunResult live =
        runCaptured("mcf", PrefetchScheme::GrpVar, path);
    const RunResult replay =
        runReplayed("mcf", PrefetchScheme::Stride, path);
    EXPECT_GT(replay.instructions, 0u);
    // Within one op of the live run's retirement count.
    EXPECT_GE(replay.instructions + 1, live.instructions);
    EXPECT_NE(replay.scheme, live.scheme);
}

TEST(CaptureReplay, WorkloadMismatchIsFatal)
{
    const std::string path = tempPath("grp_cap_wl.grpbin");
    runCaptured("mcf", PrefetchScheme::GrpVar, path);
    EXPECT_THROW(runReplayed("equake", PrefetchScheme::GrpVar, path),
                 std::exception);
}

TEST(CaptureReplay, SeedMismatchIsFatal)
{
    const std::string path = tempPath("grp_cap_seed.grpbin");
    runCaptured("mcf", PrefetchScheme::GrpVar, path);
    SimConfig config;
    config.scheme = PrefetchScheme::GrpVar;
    RunOptions opts = baseOptions();
    opts.seed = 8; // Capture was recorded with seed 7.
    opts.replayPath = path;
    EXPECT_THROW(runWorkload("mcf", config, opts), std::exception);
}

TEST(CaptureReplay, TruncatedCaptureIsFatal)
{
    const std::string path = tempPath("grp_cap_trunc.grpbin");
    runCaptured("mcf", PrefetchScheme::GrpVar, path);

    std::ifstream is(path, std::ios::binary);
    ASSERT_TRUE(is.is_open());
    std::ostringstream text;
    text << is.rdbuf();
    const std::string data = text.str();
    ASSERT_GT(data.size(), 300u);

    const std::string damaged_path =
        tempPath("grp_cap_trunc_cut.grpbin");
    std::ofstream os(damaged_path, std::ios::binary);
    os.write(data.data(),
             static_cast<std::streamsize>(data.size() - 200));
    os.close();

    EXPECT_THROW(
        runReplayed("mcf", PrefetchScheme::GrpVar, damaged_path),
        std::exception);
}

TEST(CaptureReplay, LifecycleTraceIsNotAReplaySource)
{
    // A kind-0 lifecycle trace must be rejected as a replay input
    // with a fatal, not misdecoded.
    const std::string trace = tempPath("grp_cap_kind.grpbin");
    SimConfig config;
    config.scheme = PrefetchScheme::GrpVar;
    RunOptions opts = baseOptions();
    opts.obs.tracePath = trace;
    opts.obs.traceLevel = 1;
    runWorkload("mcf", config, opts);

    EXPECT_THROW(runReplayed("mcf", PrefetchScheme::GrpVar, trace),
                 std::exception);
}

TEST(CaptureReplay, CaptureAndReplayAreMutuallyExclusive)
{
    const std::string path = tempPath("grp_cap_both.grpbin");
    runCaptured("mcf", PrefetchScheme::GrpVar, path);
    SimConfig config;
    config.scheme = PrefetchScheme::GrpVar;
    RunOptions opts = baseOptions();
    opts.replayPath = path;
    opts.capturePath = tempPath("grp_cap_both_out.grpbin");
    EXPECT_THROW(runWorkload("mcf", config, opts), std::exception);
}

TEST(CaptureReplay, MissingCaptureIsFatal)
{
    EXPECT_THROW(runReplayed("mcf", PrefetchScheme::GrpVar,
                             tempPath("grp_cap_nonexistent.grpbin")),
                 std::exception);
}

} // namespace
} // namespace grp
