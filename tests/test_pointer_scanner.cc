/** @file Unit tests for the stateless pointer scanner. */

#include <gtest/gtest.h>

#include "mem/functional_memory.hh"
#include "prefetch/pointer_scanner.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

class PointerScannerTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    FunctionalMemory mem;
};

TEST_F(PointerScannerTest, FindsHeapPointers)
{
    const Addr node = mem.heapAlloc(64, 64);
    const Addr target_a = mem.heapAlloc(64, 64);
    const Addr target_b = mem.heapAlloc(64, 64);
    mem.write64(node + 8, target_a);
    mem.write64(node + 40, target_b);
    PointerScanner scanner(mem);
    std::array<Addr, 8> out;
    const unsigned found = scanner.scan(node, out);
    ASSERT_EQ(found, 2u);
    EXPECT_EQ(out[0], target_a);
    EXPECT_EQ(out[1], target_b);
}

TEST_F(PointerScannerTest, IgnoresNonPointerValues)
{
    const Addr node = mem.heapAlloc(64, 64);
    mem.write64(node, 42);               // Small integer.
    mem.write64(node + 8, 0);            // Null.
    mem.write64(node + 16, ~0ull);       // All ones.
    mem.write64(node + 24, 0x1000'0000); // Static segment.
    PointerScanner scanner(mem);
    std::array<Addr, 8> out;
    EXPECT_EQ(scanner.scan(node, out), 0u);
}

TEST_F(PointerScannerTest, SkipsSelfPointers)
{
    const Addr node = mem.heapAlloc(64, 64);
    mem.write64(node, node + 16); // Points into its own block.
    PointerScanner scanner(mem);
    std::array<Addr, 8> out;
    EXPECT_EQ(scanner.scan(node, out), 0u);
}

TEST_F(PointerScannerTest, ScansWholeBlockFromAnyOffset)
{
    const Addr node = mem.heapAlloc(64, 64);
    const Addr target = mem.heapAlloc(64, 64);
    mem.write64(node + 56, target);
    PointerScanner scanner(mem);
    std::array<Addr, 8> out;
    // Scan via a mid-block address.
    EXPECT_EQ(scanner.scan(node + 24, out), 1u);
    EXPECT_EQ(out[0], target);
}

TEST_F(PointerScannerTest, FindsAllEightSlots)
{
    const Addr node = mem.heapAlloc(64, 64);
    std::array<Addr, 8> targets;
    for (unsigned i = 0; i < 8; ++i) {
        targets[i] = mem.heapAlloc(64, 64);
        mem.write64(node + 8 * i, targets[i]);
    }
    PointerScanner scanner(mem);
    std::array<Addr, 8> out;
    ASSERT_EQ(scanner.scan(node, out), 8u);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(out[i], targets[i]);
}

TEST_F(PointerScannerTest, PackedIndexPairsAreNotPointers)
{
    // Two 32-bit array indices packed in one word must not pass the
    // base-and-bounds test (the false-positive case the heap layout
    // avoids by construction).
    const Addr node = mem.heapAlloc(64, 64);
    mem.write32(node, 123456);
    mem.write32(node + 4, 789012);
    PointerScanner scanner(mem);
    std::array<Addr, 8> out;
    EXPECT_EQ(scanner.scan(node, out), 0u);
}

} // namespace
} // namespace grp
