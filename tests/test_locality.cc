/**
 * @file
 * Unit tests for the spatial locality analysis (Figure 7),
 * exercising the paper's Figure 3-6 example shapes and the §5.4
 * policy variants.
 */

#include <gtest/gtest.h>

#include "compiler/builder.hh"
#include "compiler/hint_generator.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

constexpr uint64_t kL2 = 1024 * 1024;

class LocalityTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }

    HintTable
    analyse(Program &prog,
            CompilerPolicy policy = CompilerPolicy::Default)
    {
        HintTable table;
        HintGenerator generator(policy, kL2);
        generator.run(prog, table);
        return table;
    }

    FunctionalMemory mem;
};

TEST_F(LocalityTest, Figure3FortranColumnMajor)
{
    // do j: do i: a(i,j) — spatial; c(b(i), j) — indirect target.
    ProgramBuilder b(mem);
    ArrayOpts fortran;
    fortran.columnMajor = true;
    const ArrayId a = b.array("a", 8, {128, 128}, fortran);
    const VarId j = b.forLoop(0, 128);
    const VarId i = b.forLoop(0, 128);
    const RefId a_ref =
        b.arrayRef(a, {Subscript::affine(Affine::var(i)),
                       Subscript::affine(Affine::var(j))});
    b.end();
    b.end();
    Program prog = b.build();
    HintTable table = analyse(prog);
    EXPECT_TRUE(table.get(a_ref).spatial());
}

TEST_F(LocalityTest, RowMajorNeedsInnerLastDimension)
{
    ProgramBuilder b(mem);
    const ArrayId a = b.array("a", 8, {512, 512}); // C layout.
    const VarId i = b.forLoop(0, 512);
    const VarId j = b.forLoop(0, 512);
    const RefId good =
        b.arrayRef(a, {Subscript::affine(Affine::var(i)),
                       Subscript::affine(Affine::var(j))});
    b.end();
    b.end();
    // Transposed nest: inner loop walks the row dimension.
    const ArrayId c = b.array("c", 8, {512, 512});
    const VarId jj = b.forLoop(0, 512);
    const VarId ii = b.forLoop(0, 512);
    const RefId transposed =
        b.arrayRef(c, {Subscript::affine(Affine::var(ii)),
                       Subscript::affine(Affine::var(jj))});
    b.end();
    b.end();
    Program prog = b.build();
    HintTable table = analyse(prog);
    EXPECT_TRUE(table.get(good).spatial());
    // 512x8 B = 4 KB per inner sweep: outer-carried reuse fits the
    // L2, so the default policy still marks it.
    EXPECT_TRUE(table.get(transposed).spatial());
}

TEST_F(LocalityTest, TransposeBeyondL2IsUnmarkedByDefault)
{
    // a[i][j] with inner i: the spatial dimension (j, outer) is
    // reused only after the inner sweep touches 2 MB > L2.
    ProgramBuilder b(mem);
    const ArrayId a = b.array("a", 8, {256 * 1024, 64});
    const VarId j = b.forLoop(0, 64);
    const VarId i = b.forLoop(0, 256 * 1024);
    const RefId ref =
        b.arrayRef(a, {Subscript::affine(Affine::var(i)),
                       Subscript::affine(Affine::var(j))});
    b.end();
    b.end();
    Program prog = b.build();
    HintTable def = analyse(prog);
    EXPECT_FALSE(def.get(ref).spatial());
}

TEST_F(LocalityTest, PolicyChangesOuterMarking)
{
    auto build = [&](FunctionalMemory &fmem) {
        ProgramBuilder b(fmem);
        // a[i][o]: spatial dimension carried by the outer loop;
        // volume per outer iteration = 512K elems * 8 B = 4 MB > L2.
        const ArrayId a = b.array("a", 8, {512 * 1024, 64});
        const VarId o = b.forLoop(0, 64);
        const VarId i = b.forLoop(0, 512 * 1024);
        b.arrayRef(a, {Subscript::affine(Affine::var(i)),
                       Subscript::affine(Affine::var(o))});
        b.end();
        b.end();
        return b.build();
    };

    FunctionalMemory m1, m2, m3;
    Program conservative_prog = build(m1);
    Program default_prog = build(m2);
    Program aggressive_prog = build(m3);

    HintTable conservative =
        analyse(conservative_prog, CompilerPolicy::Conservative);
    HintTable def = analyse(default_prog, CompilerPolicy::Default);
    HintTable aggressive =
        analyse(aggressive_prog, CompilerPolicy::Aggressive);

    // Spatial-dimension reuse is carried by the outer loop with a
    // 4 MB volume: only the aggressive policy marks it.
    EXPECT_FALSE(conservative.get(0).spatial());
    EXPECT_FALSE(def.get(0).spatial());
    EXPECT_TRUE(aggressive.get(0).spatial());
}

TEST_F(LocalityTest, ConservativeDropsOuterFitsMarks)
{
    auto build = [&](FunctionalMemory &fmem) {
        ProgramBuilder b(fmem);
        const ArrayId a = b.array("a", 8, {128, 64});
        const VarId o = b.forLoop(0, 64);
        const VarId i = b.forLoop(0, 128);
        b.arrayRef(a, {Subscript::affine(Affine::var(i)),
                       Subscript::affine(Affine::var(o))});
        b.end();
        b.end();
        return b.build();
    };
    FunctionalMemory m1, m2;
    Program p1 = build(m1), p2 = build(m2);
    HintTable conservative = analyse(p1, CompilerPolicy::Conservative);
    HintTable def = analyse(p2, CompilerPolicy::Default);
    EXPECT_FALSE(conservative.get(0).spatial());
    EXPECT_TRUE(def.get(0).spatial()); // 1 KB volume fits easily.
}

TEST_F(LocalityTest, RandomSubscriptIsNeverSpatial)
{
    ProgramBuilder b(mem);
    const ArrayId a = b.array("a", 8, {4096});
    b.forLoop(0, 100);
    const RefId ref = b.arrayRef(a, {Subscript::random(4096)});
    b.end();
    Program prog = b.build();
    HintTable table = analyse(prog, CompilerPolicy::Aggressive);
    EXPECT_FALSE(table.get(ref).spatial());
}

TEST_F(LocalityTest, Figure4HeapArrayOfPointers)
{
    // T **buf: buf[i] spatial (and pointer, tested elsewhere);
    // buf[i][j] spatial through the row pointer.
    ProgramBuilder b(mem);
    ArrayOpts opts;
    opts.heap = true;
    opts.elemIsPointer = true;
    const ArrayId buf = b.array("buf", 8, {64}, opts);
    const PtrId row = b.ptr("row");
    const VarId i = b.forLoop(0, 64);
    const RefId row_load =
        b.ptrLoadFromArray(row, buf, Subscript::affine(Affine::var(i)));
    const VarId j = b.forLoop(0, 64);
    const RefId elem =
        b.ptrArrayRef(row, 8, Subscript::affine(Affine::var(j)));
    b.end();
    b.end();
    Program prog = b.build();
    HintTable table = analyse(prog);
    EXPECT_TRUE(table.get(row_load).spatial());
    EXPECT_TRUE(table.get(elem).spatial());
}

TEST_F(LocalityTest, Figure5InductionPointerDereference)
{
    ProgramBuilder b(mem);
    const PtrId p = b.ptr("p", kNoId, 0x1000);
    b.forLoop(0, 100);
    const RefId deref =
        b.ptrArrayRef(p, 8, Subscript::affine(Affine::of(0)));
    b.ptrUpdateConst(p, 8);
    b.end();
    Program prog = b.build();
    HintTable table = analyse(prog);
    EXPECT_TRUE(table.get(deref).spatial());
}

TEST_F(LocalityTest, Figure6ListWalkIsNotSpatial)
{
    ProgramBuilder b(mem);
    const TypeId t = b.structType("t", 64, {{"next", 8, true, 0}});
    const Addr head = mem.heapAlloc(64);
    const PtrId a = b.ptr("a", t, head);
    b.whileLoop(a, 100);
    const RefId field = b.ptrRef(a, 0);
    const RefId walk = b.ptrUpdateField(a, 8);
    b.end();
    Program prog = b.build();
    HintTable table = analyse(prog);
    EXPECT_FALSE(table.get(field).spatial());
    EXPECT_FALSE(table.get(walk).spatial());
}

TEST_F(LocalityTest, PropagationThroughSpatialPointerLoad)
{
    // p = buf[i] (spatial) => p->f marked spatial (Figure 7's
    // do/while propagation).
    ProgramBuilder b(mem);
    ArrayOpts opts;
    opts.heap = true;
    opts.elemIsPointer = true;
    const ArrayId buf = b.array("buf", 8, {64}, opts);
    const TypeId t = b.structType("t", 64, {{"f", 8, false, kNoId}});
    const PtrId p = b.ptr("p", t);
    const VarId i = b.forLoop(0, 64);
    b.ptrLoadFromArray(p, buf, Subscript::affine(Affine::var(i)));
    const RefId field = b.ptrRef(p, 8);
    b.end();
    Program prog = b.build();
    HintTable table = analyse(prog);
    EXPECT_TRUE(table.get(field).spatial());
}

TEST_F(LocalityTest, NoPropagationFromRandomPointerLoad)
{
    ProgramBuilder b(mem);
    ArrayOpts opts;
    opts.heap = true;
    opts.elemIsPointer = true;
    const ArrayId buf = b.array("buf", 8, {4096}, opts);
    const TypeId t = b.structType("t", 64, {{"f", 8, false, kNoId}});
    const PtrId p = b.ptr("p", t);
    b.forLoop(0, 64);
    b.ptrLoadFromArray(p, buf, Subscript::random(4096));
    const RefId field = b.ptrRef(p, 8);
    b.end();
    Program prog = b.build();
    HintTable table = analyse(prog);
    EXPECT_FALSE(table.get(field).spatial());
}

TEST_F(LocalityTest, ReferencesOutsideLoopsAreUnmarked)
{
    ProgramBuilder b(mem);
    const ArrayId a = b.array("a", 8, {64});
    const RefId ref =
        b.arrayRef(a, {Subscript::affine(Affine::of(3))});
    Program prog = b.build();
    HintTable table = analyse(prog, CompilerPolicy::Aggressive);
    EXPECT_FALSE(table.get(ref).spatial());
}

TEST_F(LocalityTest, IndexArrayOfIndirectAccessIsSpatial)
{
    ProgramBuilder b(mem);
    const ArrayId idx = b.array("b", 4, {4096});
    const ArrayId data = b.array("a", 8, {64 * 1024});
    const VarId i = b.forLoop(0, 4096);
    const RefId target =
        b.arrayRef(data, {Subscript::indirect(idx, Affine::var(i))});
    b.end();
    Program prog = b.build();

    // Find the embedded index load's RefId.
    const Stmt &stmt = prog.top[0].loop.body.back().stmt;
    const RefId index_ref = stmt.subs[0].indexRefId;

    HintTable table = analyse(prog);
    EXPECT_TRUE(table.get(index_ref).spatial());
    EXPECT_FALSE(table.get(target).spatial());
}

} // namespace
} // namespace grp
