/** @file Unit tests for the event queue and its inline-storage
 *  callback type. */

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"

namespace grp
{
namespace
{

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(10, [&] { order.push_back(2); });
    queue.schedule(5, [&] { order.push_back(1); });
    queue.schedule(20, [&] { order.push_back(3); });
    queue.advanceTo(25);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(queue.curTick(), 25u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        queue.schedule(7, [&order, i] { order.push_back(i); });
    queue.advanceTo(7);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, AdvancePartially)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(5, [&] { ++fired; });
    queue.schedule(10, [&] { ++fired; });
    queue.advanceTo(7);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(queue.size(), 1u);
    EXPECT_EQ(queue.nextEventTick(), 10u);
    queue.advanceTo(10);
    EXPECT_EQ(fired, 2);
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.nextEventTick(), kMaxTick);
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue queue;
    queue.advanceTo(100);
    Tick seen = 0;
    queue.scheduleIn(5, [&] { seen = queue.curTick(); });
    queue.advanceTo(105);
    EXPECT_EQ(seen, 105u);
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(1, [&] {
        ++fired;
        queue.scheduleIn(1, [&] { ++fired; });
    });
    queue.advanceTo(10);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CallbackMayScheduleSameTick)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(3, [&] { queue.scheduleIn(0, [&] { ++fired; }); });
    queue.advanceTo(3);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, DrainRunsEverything)
{
    EventQueue queue;
    int fired = 0;
    for (Tick t = 1; t <= 32; ++t)
        queue.schedule(t * 3, [&] { ++fired; });
    EXPECT_EQ(queue.drain(), 96u);
    EXPECT_EQ(fired, 32);
}

TEST(EventQueue, PastSchedulingPanics)
{
    EventQueue queue;
    queue.advanceTo(10);
    EXPECT_THROW(queue.schedule(5, [] {}), std::logic_error);
}

TEST(EventQueue, TimeBackwardsPanics)
{
    EventQueue queue;
    queue.advanceTo(10);
    EXPECT_THROW(queue.advanceTo(5), std::logic_error);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(5, [&] { ++fired; });
    queue.advanceTo(2);
    queue.reset();
    EXPECT_EQ(queue.curTick(), 0u);
    EXPECT_TRUE(queue.empty());
    queue.advanceTo(10);
    EXPECT_EQ(fired, 0);
}

TEST(InlineCallback, MoveOnlyCaptureRuns)
{
    auto value = std::make_unique<int>(41);
    int seen = 0;
    InlineCallback cb(
        [&seen, v = std::move(value)]() mutable { seen = ++*v; });
    EXPECT_TRUE(static_cast<bool>(cb));
    cb();
    EXPECT_EQ(seen, 42);
}

TEST(InlineCallback, MoveTransfersOwnership)
{
    int fired = 0;
    InlineCallback a([&fired] { ++fired; });
    InlineCallback b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(fired, 1);
    InlineCallback c;
    c = std::move(b);
    c();
    EXPECT_EQ(fired, 2);
}

TEST(InlineCallback, OversizedCaptureFallsBackToHeap)
{
    // A capture larger than the inline buffer still works (it is
    // boxed), and destruction releases it exactly once.
    static int destroyed = 0;
    destroyed = 0;
    struct Big
    {
        std::array<uint64_t, 32> payload{}; // 256 B > kInlineBytes.
        bool armed = true;
        Big() = default;
        Big(Big &&other) noexcept : payload(other.payload)
        {
            other.armed = false;
        }
        Big(const Big &) = delete;
        ~Big()
        {
            if (armed)
                ++destroyed;
        }
    };
    static_assert(sizeof(Big) > InlineCallback::kInlineBytes);
    uint64_t sum = 0;
    {
        Big big;
        big.payload[0] = 40;
        big.payload[31] = 2;
        InlineCallback cb([&sum, big = std::move(big)] {
            sum = big.payload[0] + big.payload[31];
        });
        InlineCallback moved(std::move(cb));
        moved();
    }
    EXPECT_EQ(sum, 42u);
    EXPECT_EQ(destroyed, 1);
}

TEST(InlineCallback, QueueRunsOversizedCaptures)
{
    EventQueue queue;
    std::array<uint64_t, 40> blob{};
    blob[39] = 7;
    uint64_t seen = 0;
    queue.schedule(3, [blob, &seen] { seen = blob[39]; });
    queue.advanceTo(3);
    EXPECT_EQ(seen, 7u);
}

} // namespace
} // namespace grp
