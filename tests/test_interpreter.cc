/** @file Unit tests for the IR interpreter. */

#include <gtest/gtest.h>

#include <vector>

#include "compiler/builder.hh"
#include "sim/logging.hh"
#include "workloads/interpreter.hh"

namespace grp
{
namespace
{

class InterpreterTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }

    std::vector<TraceOp>
    collect(const Program &prog, uint64_t passes = 1,
            size_t limit = 100'000)
    {
        Interpreter interp(prog, mem, 42, passes);
        std::vector<TraceOp> ops;
        TraceOp op;
        while (ops.size() < limit && interp.next(op))
            ops.push_back(op);
        return ops;
    }

    FunctionalMemory mem;
};

TEST_F(InterpreterTest, CountedLoopEmitsAffineAddresses)
{
    ProgramBuilder b(mem);
    const ArrayId a = b.array("a", 8, {64});
    const VarId i = b.forLoop(0, 8);
    b.arrayRef(a, {Subscript::affine(Affine::var(i, 2, 1))});
    b.end();
    Program prog = b.build();
    const Addr base = prog.arrays[0].base;

    auto ops = collect(prog);
    ASSERT_EQ(ops.size(), 8u);
    for (int k = 0; k < 8; ++k) {
        EXPECT_EQ(ops[k].kind, OpKind::Load);
        EXPECT_EQ(ops[k].addr, base + 8 * (2 * k + 1));
    }
}

TEST_F(InterpreterTest, StoresAndComputesEmitted)
{
    ProgramBuilder b(mem);
    const ArrayId a = b.array("a", 8, {8});
    const VarId i = b.forLoop(0, 2);
    b.arrayRef(a, {Subscript::affine(Affine::var(i))}, true);
    b.compute(3);
    b.end();
    auto ops = collect(b.build());
    ASSERT_EQ(ops.size(), 8u);
    EXPECT_EQ(ops[0].kind, OpKind::Store);
    EXPECT_EQ(ops[1].kind, OpKind::Compute);
    EXPECT_EQ(ops[3].kind, OpKind::Compute);
}

TEST_F(InterpreterTest, NestedLoopsColumnMajor)
{
    ProgramBuilder b(mem);
    ArrayOpts fortran;
    fortran.columnMajor = true;
    const ArrayId a = b.array("a", 8, {4, 4}, fortran);
    const VarId j = b.forLoop(0, 4);
    const VarId i = b.forLoop(0, 4);
    b.arrayRef(a, {Subscript::affine(Affine::var(i)),
                   Subscript::affine(Affine::var(j))});
    b.end();
    b.end();
    Program prog = b.build();
    const Addr base = prog.arrays[0].base;
    auto ops = collect(prog);
    ASSERT_EQ(ops.size(), 16u);
    // Column-major: consecutive inner iterations are unit stride.
    EXPECT_EQ(ops[1].addr, ops[0].addr + 8);
    // New column jumps by 4 elements.
    EXPECT_EQ(ops[4].addr, base + 8 * 4);
}

TEST_F(InterpreterTest, PointerChaseFollowsMemory)
{
    // Build a 3-node list by hand.
    const Addr n0 = mem.heapAlloc(64, 64);
    const Addr n1 = mem.heapAlloc(64, 64);
    const Addr n2 = mem.heapAlloc(64, 64);
    mem.write64(n0 + 8, n1);
    mem.write64(n1 + 8, n2);
    mem.write64(n2 + 8, 0);

    ProgramBuilder b(mem);
    const TypeId t = b.structType("t", 64, {{"next", 8, true, 0}});
    const PtrId p = b.ptr("p", t, n0);
    b.whileLoop(p);
    b.ptrRef(p, 0);
    b.ptrUpdateField(p, 8);
    b.end();
    auto ops = collect(b.build());
    ASSERT_EQ(ops.size(), 6u);
    EXPECT_EQ(ops[0].addr, n0);
    EXPECT_EQ(ops[1].addr, n0 + 8);
    EXPECT_EQ(ops[2].addr, n1);
    EXPECT_EQ(ops[4].addr, n2);
}

TEST_F(InterpreterTest, ChaseRespectsMaxIter)
{
    const Addr n0 = mem.heapAlloc(64, 64);
    mem.write64(n0 + 8, n0); // Self-loop: would run forever.
    ProgramBuilder b(mem);
    const TypeId t = b.structType("t", 64, {{"next", 8, true, 0}});
    const PtrId p = b.ptr("p", t, n0);
    b.whileLoop(p, 5);
    b.ptrUpdateField(p, 8);
    b.end();
    auto ops = collect(b.build());
    EXPECT_EQ(ops.size(), 5u);
}

TEST_F(InterpreterTest, NullChaseSkipsBody)
{
    ProgramBuilder b(mem);
    const PtrId p = b.ptr("p", kNoId, 0);
    b.whileLoop(p);
    b.ptrRef(p, 0);
    b.end();
    b.compute(1);
    auto ops = collect(b.build());
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].kind, OpKind::Compute);
}

TEST_F(InterpreterTest, IndirectSubscriptEmitsIndexLoad)
{
    ProgramBuilder b(mem);
    const ArrayId idx = b.array("idx", 4, {16});
    const ArrayId data = b.array("data", 8, {1024});
    Program *captured = nullptr;
    for (unsigned i = 0; i < 16; ++i)
        mem.write32(b.arrayBase(idx) + 4 * i, 100 + i);
    const VarId i = b.forLoop(0, 4);
    b.arrayRef(data, {Subscript::indirect(idx, Affine::var(i))});
    b.end();
    Program prog = b.build();
    captured = &prog;
    auto ops = collect(prog);
    // Each iteration: index load then data load.
    ASSERT_EQ(ops.size(), 8u);
    const Addr idx_base = captured->arrays[0].base;
    const Addr data_base = captured->arrays[1].base;
    EXPECT_EQ(ops[0].addr, idx_base);
    EXPECT_EQ(ops[1].addr, data_base + 8 * 100);
    EXPECT_EQ(ops[2].addr, idx_base + 4);
    EXPECT_EQ(ops[3].addr, data_base + 8 * 101);
    // The index load carries its own static id.
    EXPECT_NE(ops[0].refId, ops[1].refId);
}

TEST_F(InterpreterTest, RandomSubscriptIsDeterministicPerSeed)
{
    ProgramBuilder b(mem);
    const ArrayId a = b.array("a", 8, {4096});
    const VarId i = b.forLoop(0, 64);
    (void)i;
    b.arrayRef(a, {Subscript::random(4096)});
    b.end();
    Program prog = b.build();

    Interpreter x(prog, mem, 7), y(prog, mem, 7), z(prog, mem, 8);
    TraceOp ox, oy, oz;
    bool differs = false;
    for (int k = 0; k < 64; ++k) {
        ASSERT_TRUE(x.next(ox));
        ASSERT_TRUE(y.next(oy));
        ASSERT_TRUE(z.next(oz));
        EXPECT_EQ(ox.addr, oy.addr);
        differs = differs || ox.addr != oz.addr;
    }
    EXPECT_TRUE(differs);
}

TEST_F(InterpreterTest, PassesResetPointers)
{
    const Addr n0 = mem.heapAlloc(64, 64);
    const Addr n1 = mem.heapAlloc(64, 64);
    mem.write64(n0 + 8, n1);
    mem.write64(n1 + 8, 0);
    ProgramBuilder b(mem);
    const TypeId t = b.structType("t", 64, {{"next", 8, true, 0}});
    const PtrId p = b.ptr("p", t, n0);
    b.whileLoop(p);
    b.ptrRef(p, 0);
    b.ptrUpdateField(p, 8);
    b.end();
    auto ops = collect(b.build(), /*passes=*/2);
    ASSERT_EQ(ops.size(), 8u);
    EXPECT_EQ(ops[4].addr, n0); // Second pass restarts at the head.
}

TEST_F(InterpreterTest, IndirectPfEmitsOncePerIndexBlock)
{
    ProgramBuilder b(mem);
    const ArrayId idx = b.array("idx", 4, {64});
    const ArrayId data = b.array("data", 8, {4096});
    const VarId i = b.forLoop(0, 40);
    Stmt pf;
    pf.kind = StmtKind::IndirectPf;
    pf.targetArray = data;
    pf.indexArray = idx;
    pf.indexExpr = Affine::var(i);
    pf.everyN = 16;
    // Inject the statement the compiler pass would insert.
    b.compute(0);
    b.end();
    Program prog = b.build();
    prog.top[0].loop.body[0] = Node::of(pf);

    auto ops = collect(prog);
    unsigned indirect_ops = 0;
    for (const TraceOp &op : ops)
        indirect_ops += op.kind == OpKind::IndirectPrefetch;
    EXPECT_EQ(indirect_ops, 3u); // i = 0, 16, 32.
}

TEST_F(InterpreterTest, PtrArrayRefUsesElementSize)
{
    ProgramBuilder b(mem);
    const Addr row = mem.heapAlloc(1024, 64);
    const PtrId p = b.ptr("p", kNoId, row);
    const VarId j = b.forLoop(0, 4);
    b.ptrArrayRef(p, 16, Subscript::affine(Affine::var(j)));
    b.end();
    auto ops = collect(b.build());
    ASSERT_EQ(ops.size(), 4u);
    EXPECT_EQ(ops[1].addr, row + 16);
    EXPECT_EQ(ops[3].addr, row + 48);
}

TEST_F(InterpreterTest, ResetReplaysIdentically)
{
    ProgramBuilder b(mem);
    const ArrayId a = b.array("a", 8, {256});
    const VarId i = b.forLoop(0, 16);
    (void)i;
    b.arrayRef(a, {Subscript::random(256)});
    b.end();
    Program prog = b.build();
    Interpreter interp(prog, mem, 5, 1);
    std::vector<Addr> first;
    TraceOp op;
    while (interp.next(op))
        first.push_back(op.addr);
    interp.reset();
    std::vector<Addr> second;
    while (interp.next(op))
        second.push_back(op.addr);
    EXPECT_EQ(first, second);
}

} // namespace
} // namespace grp
