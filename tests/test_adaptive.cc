/** @file Unit tests for the adaptive feedback controller subsystem:
 *  signal sampling, the policy state machine (hysteresis, bandwidth
 *  gating, congestion), and the control-plane hooks in the region
 *  queue and cache. */

#include <gtest/gtest.h>

#include "adaptive/controller.hh"
#include "adaptive/signals.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "prefetch/region_queue.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

using adaptive::AdaptiveController;
using adaptive::InsertPos;
using adaptive::Knob;
using obs::HintClass;

TEST(AdaptiveSignals, FirstSampleIsCumulative)
{
    adaptive::Sample feed;
    adaptive::Signals signals([&] { return feed; });
    feed.prefetchesIssued = 10;
    feed.usefulPrefetches = 4;
    const adaptive::EpochSignals s = signals.sample();
    EXPECT_EQ(s.prefetchesIssued, 10u);
    EXPECT_EQ(s.usefulPrefetches, 4u);
}

TEST(AdaptiveSignals, DeltasBetweenSamples)
{
    adaptive::Sample feed;
    adaptive::Signals signals([&] { return feed; });
    feed.prefetchesIssued = 10;
    signals.sample();
    feed.prefetchesIssued = 25;
    feed.byClass[size_t(HintClass::Spatial)].fills = 7;
    const adaptive::EpochSignals s = signals.sample();
    EXPECT_EQ(s.prefetchesIssued, 15u);
    EXPECT_EQ(s.classFills(HintClass::Spatial), 7u);
}

TEST(AdaptiveSignals, CounterResetSaturatesInsteadOfWrapping)
{
    adaptive::Sample feed;
    adaptive::Signals signals([&] { return feed; });
    feed.prefetchesIssued = 1000;
    signals.sample();
    // A stats reset dropped the counter below the primed value; the
    // post-reset cumulative value is the delta, not a huge wrap.
    feed.prefetchesIssued = 30;
    EXPECT_EQ(signals.sample().prefetchesIssued, 30u);
}

TEST(AdaptiveSignals, ReprimeDropsTheInterveningEra)
{
    adaptive::Sample feed;
    adaptive::Signals signals([&] { return feed; });
    feed.prefetchesIssued = 100;
    signals.reprime();
    feed.prefetchesIssued = 110;
    EXPECT_EQ(signals.sample().prefetchesIssued, 10u);
}

TEST(AdaptiveSignals, DerivedRatioEdgeCases)
{
    adaptive::EpochSignals s;
    // No accounted channel cycles: an idle system has headroom.
    EXPECT_DOUBLE_EQ(s.idleFraction(), 1.0);
    // Unknown queue capacity disables the occupancy signal.
    s.queueDepth = 5;
    EXPECT_DOUBLE_EQ(s.queueOccupancy(), 0.0);
    EXPECT_DOUBLE_EQ(s.classAccuracy(HintClass::Spatial), 0.0);
    EXPECT_DOUBLE_EQ(s.pollutionRate(), 0.0);
}

/** Drives the controller through hand-built epochs. */
class AdaptiveControllerTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }

    AdaptiveController
    make()
    {
        // Defaults: accuracy 0.20/0.60, pollution 0.02, idle
        // 0.10/0.50, occupancy 0.75, hysteresis 2, minEpochFills 8.
        return AdaptiveController(config.adaptive,
                                  config.region.recursiveDepth,
                                  [this] { return feed; });
    }

    /** One epoch where @p cls filled 100 blocks of which @p useful
     *  were used, over a channel that was @p idle_pct% idle. */
    void
    epoch(AdaptiveController &ctrl, HintClass cls, uint64_t useful,
          unsigned idle_pct = 60)
    {
        feed.byClass[size_t(cls)].fills += 100;
        feed.byClass[size_t(cls)].useful += useful;
        feed.prefetchesIssued += 100;
        feed.usefulPrefetches += useful;
        feed.l2DemandAccesses += 1000;
        feed.channelCycles += 1000;
        feed.idleCycles += idle_pct * 10;
        ctrl.onEpoch(++now);
    }

    /** An epoch with too few fills for @p cls to carry signal. */
    void
    lowSignalEpoch(AdaptiveController &ctrl, HintClass cls)
    {
        feed.byClass[size_t(cls)].fills += 2;
        feed.channelCycles += 1000;
        feed.idleCycles += 600;
        ctrl.onEpoch(++now);
    }

    SimConfig config;
    adaptive::Sample feed;
    Tick now = 0;
};

TEST_F(AdaptiveControllerTest, InitialStateMatchesGrpVar)
{
    AdaptiveController ctrl = make();
    const adaptive::ControlPlane &plane = ctrl.plane();
    EXPECT_EQ(plane.regionBlockCap(HintClass::Spatial), 64u);
    EXPECT_EQ(plane.insertPos(HintClass::Spatial), InsertPos::Lru);
    EXPECT_EQ(plane.priority(HintClass::Spatial), 1u);
    EXPECT_EQ(plane.ptrDepthCap(HintClass::Recursive), 255u);
    EXPECT_EQ(ctrl.totalTransitions(), 0u);
}

TEST_F(AdaptiveControllerTest, RaisesOnlyAfterHysteresis)
{
    AdaptiveController ctrl = make();
    epoch(ctrl, HintClass::Spatial, 80); // accuracy 0.8: good.
    EXPECT_EQ(ctrl.totalTransitions(), 0u); // One vote is not enough.
    epoch(ctrl, HintClass::Spatial, 80);
    // Second consecutive good vote: insertion and priority rise.
    EXPECT_EQ(ctrl.plane().insertPos(HintClass::Spatial),
              InsertPos::Mid);
    EXPECT_EQ(ctrl.plane().priority(HintClass::Spatial), 2u);
    // Size was already at the top of its ladder.
    EXPECT_EQ(ctrl.plane().regionBlockCap(HintClass::Spatial), 64u);
    EXPECT_EQ(ctrl.epochs(), 2u);
}

TEST_F(AdaptiveControllerTest, OscillatingAccuracyNeverFlapsAKnob)
{
    AdaptiveController ctrl = make();
    // Accuracy oscillates across the thresholds every epoch; each
    // direction flip resets the opposing streak, so with hysteresis 2
    // no knob ever moves.
    for (unsigned i = 0; i < 16; ++i)
        epoch(ctrl, HintClass::Spatial, i % 2 ? 80 : 10);
    EXPECT_EQ(ctrl.totalTransitions(), 0u);
    EXPECT_EQ(ctrl.epochs(), 16u);
}

TEST_F(AdaptiveControllerTest, LowersOnSustainedPoorAccuracy)
{
    AdaptiveController ctrl = make();
    epoch(ctrl, HintClass::Spatial, 10); // accuracy 0.1: poor.
    epoch(ctrl, HintClass::Spatial, 10);
    EXPECT_EQ(ctrl.plane().regionBlockCap(HintClass::Spatial), 16u);
    EXPECT_EQ(ctrl.plane().priority(HintClass::Spatial), 0u);
    // Insertion was already at LRU.
    EXPECT_EQ(ctrl.plane().insertPos(HintClass::Spatial),
              InsertPos::Lru);
    // Two more poor votes reach the bottom of the size ladder.
    epoch(ctrl, HintClass::Spatial, 10);
    epoch(ctrl, HintClass::Spatial, 10);
    EXPECT_EQ(ctrl.plane().regionBlockCap(HintClass::Spatial), 4u);
}

TEST_F(AdaptiveControllerTest, LowSignalEpochFreezesTheStreak)
{
    AdaptiveController ctrl = make();
    epoch(ctrl, HintClass::Spatial, 80);
    // A sparse epoch neither resets nor advances the streak...
    lowSignalEpoch(ctrl, HintClass::Spatial);
    EXPECT_EQ(ctrl.totalTransitions(), 0u);
    // ...so the next good epoch completes the hysteresis pair.
    epoch(ctrl, HintClass::Spatial, 80);
    EXPECT_EQ(ctrl.plane().insertPos(HintClass::Spatial),
              InsertPos::Mid);
    EXPECT_GT(ctrl.stats().value("lowSignalClassEpochs"), 0u);
}

TEST_F(AdaptiveControllerTest, BandwidthGatesTheSizeLadder)
{
    AdaptiveController ctrl = make();
    // Drop the size ladder first (two poor epochs).
    epoch(ctrl, HintClass::Spatial, 10);
    epoch(ctrl, HintClass::Spatial, 10);
    ASSERT_EQ(ctrl.plane().regionBlockCap(HintClass::Spatial), 16u);
    // Good accuracy but only 30% idle (< idleHigh 0.50): insertion
    // and priority rise, the bandwidth-spending size ladder holds.
    epoch(ctrl, HintClass::Spatial, 80, 30);
    epoch(ctrl, HintClass::Spatial, 80, 30);
    EXPECT_EQ(ctrl.plane().regionBlockCap(HintClass::Spatial), 16u);
    EXPECT_EQ(ctrl.plane().priority(HintClass::Spatial), 1u);
    // With headroom the size ladder grows again.
    epoch(ctrl, HintClass::Spatial, 80, 60);
    epoch(ctrl, HintClass::Spatial, 80, 60);
    EXPECT_EQ(ctrl.plane().regionBlockCap(HintClass::Spatial), 64u);
}

TEST_F(AdaptiveControllerTest, CongestionLowersDespiteGoodAccuracy)
{
    AdaptiveController ctrl = make();
    feed.queueCapacity = 100;
    feed.queueDepth = 90; // Occupancy 0.9 > 0.75.
    // 5% idle < idleLow 0.10 while the queue is backed up: the
    // congestion term votes poor even at 80% accuracy.
    epoch(ctrl, HintClass::Spatial, 80, 5);
    epoch(ctrl, HintClass::Spatial, 80, 5);
    EXPECT_EQ(ctrl.plane().regionBlockCap(HintClass::Spatial), 16u);
    EXPECT_EQ(ctrl.plane().priority(HintClass::Spatial), 0u);
}

TEST_F(AdaptiveControllerTest, DepthLadderOnRecursiveClass)
{
    AdaptiveController ctrl = make();
    epoch(ctrl, HintClass::Recursive, 10);
    epoch(ctrl, HintClass::Recursive, 10);
    EXPECT_EQ(ctrl.plane().ptrDepthCap(HintClass::Recursive), 3u);
    epoch(ctrl, HintClass::Recursive, 10);
    epoch(ctrl, HintClass::Recursive, 10);
    EXPECT_EQ(ctrl.plane().ptrDepthCap(HintClass::Recursive), 1u);
    // The spatial class was idle the whole time: untouched.
    EXPECT_EQ(ctrl.plane().regionBlockCap(HintClass::Spatial), 64u);
}

TEST_F(AdaptiveControllerTest, WarmupBoundaryKeepsKnobsButZerosStats)
{
    AdaptiveController ctrl = make();
    epoch(ctrl, HintClass::Spatial, 10);
    epoch(ctrl, HintClass::Spatial, 10);
    ASSERT_GT(ctrl.totalTransitions(), 0u);
    ctrl.onWarmupBoundary();
    // The warmed-up operating point survives the measurement
    // boundary; the counters do not.
    EXPECT_EQ(ctrl.plane().regionBlockCap(HintClass::Spatial), 16u);
    EXPECT_EQ(ctrl.epochs(), 0u);
    EXPECT_EQ(ctrl.totalTransitions(), 0u);
}

TEST(RegionQueuePlane, PriorityTiersDrainHighFirst)
{
    setQuiet(true);
    DramSystem dram{DramConfig{}};
    adaptive::ControlPlane plane;
    plane.knobs(HintClass::Pointer).priority = 2;
    plane.knobs(HintClass::Spatial).priority = 1;

    RegionQueue queue(8, /*lifo=*/true, /*bank_aware=*/false);
    // The spatial window is newest, so LIFO order alone would drain
    // it first; the pointer tier outranks it.
    queue.addPointerTarget(0x200000, 1, 0, 0, HintClass::Pointer);
    queue.noteSpatialMiss(0x100000, 4, 0, 0, HintClass::Spatial);

    queue.setControlPlane(&plane);
    auto first = queue.dequeue(dram, 0);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->hintClass, HintClass::Pointer);

    // Equal priorities reduce to the classic scan: spatial (newest)
    // drains first again.
    plane.knobs(HintClass::Pointer).priority = 1;
    queue.noteSpatialMiss(0x300000, 4, 0, 0, HintClass::Spatial);
    queue.addPointerTarget(0x400000, 1, 0, 0, HintClass::Pointer);
    auto next = queue.dequeue(dram, 0);
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(next->hintClass, HintClass::Pointer);
}

TEST(RegionQueuePlane, OccupancyHighWaterAdvancesMonotonically)
{
    setQuiet(true);
    DramSystem dram{DramConfig{}};
    RegionQueue queue(8, true, false);
    queue.noteSpatialMiss(0x100000, 4, 0, 0);
    queue.noteSpatialMiss(0x200000, 4, 0, 0);
    queue.noteSpatialMiss(0x300000, 4, 0, 0);
    EXPECT_EQ(queue.stats().value("occupancyHighWater"), 3u);
    // Draining and refilling below the mark does not move it.
    for (bool any = true; any;) {
        any = false;
        for (unsigned ch = 0; ch < 4; ++ch)
            if (queue.dequeue(dram, ch))
                any = true;
    }
    ASSERT_TRUE(queue.empty());
    queue.noteSpatialMiss(0x400000, 4, 0, 0);
    EXPECT_EQ(queue.stats().value("occupancyHighWater"), 3u);
}

TEST(CacheInsertPos, ExplicitPositionOverridesThePolicy)
{
    setQuiet(true);
    CacheConfig cc;
    cc.sizeBytes = 2 * kBlockBytes; // One 2-way set.
    cc.assoc = 2;
    cc.latency = 1;

    {
        // LRU insertion: the prefetch is the next victim.
        Cache cache(cc, "l2lru", /*lru_insertion=*/true);
        cache.insert(0x0000, false, false);
        cache.insert(0x1000, false, false);
        auto ev = cache.insert(0x2000, true, false, InsertPos::Lru);
        ASSERT_TRUE(ev.has_value());
        EXPECT_EQ(ev->blockAddr, 0x0000u); // True LRU victim.
        auto ev2 = cache.insert(0x3000, false, false);
        ASSERT_TRUE(ev2.has_value());
        EXPECT_EQ(ev2->blockAddr, 0x2000u);
    }
    {
        // MRU insertion overriding an LRU-policy cache: the demand
        // block becomes the victim instead.
        Cache cache(cc, "l2mru", /*lru_insertion=*/true);
        cache.insert(0x0000, false, false);
        cache.insert(0x1000, false, false);
        auto ev = cache.insert(0x2000, true, false, InsertPos::Mru);
        ASSERT_TRUE(ev.has_value());
        EXPECT_EQ(ev->blockAddr, 0x0000u);
        auto ev2 = cache.insert(0x3000, false, false);
        ASSERT_TRUE(ev2.has_value());
        EXPECT_EQ(ev2->blockAddr, 0x1000u);
    }
}

} // namespace
} // namespace grp
