/**
 * @file
 * Unit tests for the counterfactual shadow tags and victim table,
 * plus the end-to-end acceptance check: over a full run the four-way
 * demand classification partitions the demand stream and satisfies
 *
 *   coverageHits - pollutionMisses == shadowMisses - realMisses
 *
 * exactly, and every channel's cycle breakdown sums to its total.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "harness/runner.hh"
#include "obs/shadow_tags.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace grp
{
namespace
{

Addr
blockAddr(uint64_t block_number)
{
    return static_cast<Addr>(block_number) << kBlockShift;
}

TEST(ShadowTags, MissThenHit)
{
    obs::ShadowTags shadow(4, 2);
    EXPECT_FALSE(shadow.contains(blockAddr(1)));
    EXPECT_FALSE(shadow.access(blockAddr(1))); // Miss allocates.
    EXPECT_TRUE(shadow.contains(blockAddr(1)));
    EXPECT_TRUE(shadow.access(blockAddr(1)));
}

TEST(ShadowTags, LruEvictionWithinASet)
{
    // Set 0 of a 4-set, 2-way shadow holds block numbers 0, 4, 8...
    obs::ShadowTags shadow(4, 2);
    shadow.access(blockAddr(0));
    shadow.access(blockAddr(4));
    shadow.access(blockAddr(0)); // Touch: 4 becomes LRU.
    shadow.access(blockAddr(8)); // Evicts 4.
    EXPECT_TRUE(shadow.contains(blockAddr(0)));
    EXPECT_FALSE(shadow.contains(blockAddr(4)));
    EXPECT_TRUE(shadow.contains(blockAddr(8)));
}

TEST(ShadowTags, SetsAreIndependent)
{
    obs::ShadowTags shadow(4, 1);
    shadow.access(blockAddr(0)); // Set 0.
    shadow.access(blockAddr(1)); // Set 1.
    shadow.access(blockAddr(2)); // Set 2.
    EXPECT_TRUE(shadow.contains(blockAddr(0)));
    EXPECT_TRUE(shadow.contains(blockAddr(1)));
    EXPECT_TRUE(shadow.contains(blockAddr(2)));
    shadow.access(blockAddr(4)); // Set 0 again: evicts block 0 only.
    EXPECT_FALSE(shadow.contains(blockAddr(0)));
    EXPECT_TRUE(shadow.contains(blockAddr(1)));
}

TEST(ShadowTags, AllocateIsIdempotentForPresentBlocks)
{
    obs::ShadowTags shadow(4, 2);
    shadow.access(blockAddr(0));
    shadow.access(blockAddr(4));
    // Re-allocating 4 must refresh it, not duplicate it: a later fill
    // to the set evicts 0 (now LRU), not 4.
    shadow.allocate(blockAddr(4));
    shadow.allocate(blockAddr(4));
    shadow.access(blockAddr(8));
    EXPECT_FALSE(shadow.contains(blockAddr(0)));
    EXPECT_TRUE(shadow.contains(blockAddr(4)));
}

TEST(ShadowTags, ResetClearsEverything)
{
    obs::ShadowTags shadow(4, 2);
    shadow.access(blockAddr(3));
    shadow.reset();
    EXPECT_FALSE(shadow.contains(blockAddr(3)));
}

TEST(VictimTable, RecordThenTake)
{
    obs::VictimTable table(8);
    table.record(blockAddr(1), 42, obs::HintClass::Spatial);
    EXPECT_EQ(table.size(), 1u);
    const auto entry = table.take(blockAddr(1));
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->ref, 42u);
    EXPECT_EQ(entry->hint, obs::HintClass::Spatial);
    // Consumed: a second take finds nothing.
    EXPECT_FALSE(table.take(blockAddr(1)).has_value());
    EXPECT_EQ(table.size(), 0u);
}

TEST(VictimTable, TakeUnknownAddressIsEmpty)
{
    obs::VictimTable table(8);
    EXPECT_FALSE(table.take(blockAddr(9)).has_value());
}

TEST(VictimTable, ReRecordOverwritesAttribution)
{
    obs::VictimTable table(8);
    table.record(blockAddr(1), 1, obs::HintClass::Spatial);
    table.record(blockAddr(1), 2, obs::HintClass::Pointer);
    EXPECT_EQ(table.size(), 1u);
    const auto entry = table.take(blockAddr(1));
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->ref, 2u);
    EXPECT_EQ(entry->hint, obs::HintClass::Pointer);
}

TEST(VictimTable, CapacityBoundDropsOldestFirst)
{
    obs::VictimTable table(2);
    table.record(blockAddr(1), 1, obs::HintClass::Spatial);
    table.record(blockAddr(2), 2, obs::HintClass::Spatial);
    table.record(blockAddr(3), 3, obs::HintClass::Spatial);
    EXPECT_EQ(table.size(), 2u);
    EXPECT_EQ(table.drops(), 1u);
    EXPECT_EQ(table.recorded(), 3u);
    EXPECT_FALSE(table.take(blockAddr(1)).has_value()); // Dropped.
    EXPECT_TRUE(table.take(blockAddr(2)).has_value());
    EXPECT_TRUE(table.take(blockAddr(3)).has_value());
}

TEST(VictimTable, StaleFifoNodesDoNotDropLiveEntries)
{
    obs::VictimTable table(2);
    table.record(blockAddr(1), 1, obs::HintClass::Spatial);
    table.record(blockAddr(1), 2, obs::HintClass::Spatial);
    table.record(blockAddr(2), 3, obs::HintClass::Spatial);
    // Capacity never exceeded: the stale FIFO node for the first
    // record of block 1 must not count as a drop of the live entry.
    table.record(blockAddr(3), 4, obs::HintClass::Spatial);
    EXPECT_EQ(table.size(), 2u);
    const auto survivor = table.take(blockAddr(3));
    ASSERT_TRUE(survivor.has_value());
    EXPECT_EQ(survivor->ref, 4u);
}

TEST(VictimTable, ResetClearsCountsAndEntries)
{
    obs::VictimTable table(2);
    table.record(blockAddr(1), 1, obs::HintClass::Spatial);
    table.record(blockAddr(2), 2, obs::HintClass::Spatial);
    table.record(blockAddr(3), 3, obs::HintClass::Spatial);
    table.reset();
    EXPECT_EQ(table.size(), 0u);
    EXPECT_EQ(table.drops(), 0u);
    EXPECT_EQ(table.recorded(), 0u);
    EXPECT_FALSE(table.take(blockAddr(2)).has_value());
}

/**
 * Acceptance criterion: over a full SRP run on mcf (the paper's
 * canonical pollution case) the shadow classification partitions the
 * demand stream, the counterfactual identity holds exactly, at least
 * one pollution miss is attributed to a concrete site, and every
 * DRAM channel's demand/prefetch/writeback/idle breakdown sums to
 * its accounted total (the mixed-load arbitration satellite).
 */
TEST(ShadowTags, FullRunIdentityAndChannelBreakdown)
{
    setQuiet(true);
    SimConfig config;
    config.scheme = PrefetchScheme::Srp;
    // A small L2 makes SRP's blind 4 KB regions fight the demand
    // working set within the test budget, and MRU-inserted prefetches
    // (the §3.1 ablation point) evict live demand blocks directly, so
    // pollution is plentiful and victim-attributable. The
    // classification and its identity are config-independent.
    config.l2 = CacheConfig{64 * 1024, 4, 12, 32, 8};
    config.region.lruInsertion = false;
    RunOptions opts;
    opts.maxInstructions = 600'000;
    opts.obs.shadow = true;
    const RunResult run = runWorkload("mcf", config, opts);
    const obs::StatSnapshot &s = run.stats;

    const uint64_t both = s.value("mem.pollutionBothHits");
    const uint64_t baseline = s.value("mem.pollutionBaselineMisses");
    const uint64_t pollution = s.value("mem.pollutionMisses");
    const uint64_t coverage = s.value("mem.pollutionCoverageHits");
    const uint64_t shadow_misses =
        s.value("mem.pollutionShadowMisses");
    const uint64_t real_misses = s.value("mem.l2DemandMissesTotal");

    // The four outcomes partition the demand stream.
    EXPECT_EQ(both + baseline + pollution + coverage,
              s.value("mem.l2DemandAccesses"));
    EXPECT_EQ(baseline + pollution, real_misses);
    EXPECT_EQ(baseline + coverage, shadow_misses);

    // The counterfactual identity, exactly.
    EXPECT_EQ(static_cast<int64_t>(coverage) -
                  static_cast<int64_t>(pollution),
              static_cast<int64_t>(shadow_misses) -
                  static_cast<int64_t>(real_misses));

    // SRP's blind 4 KB regions must pollute mcf's pointer chains,
    // and the victim table must charge at least one of those misses
    // to a concrete (RefId, HintClass).
    EXPECT_GT(pollution, 0u);
    EXPECT_GT(s.value("mem.pollutionAttributed"), 0u);
    EXPECT_EQ(s.value("mem.pollutionAttributed") +
                  s.value("mem.pollutionUnattributed"),
              pollution);

    // Per-channel cycle accounting: the class buckets sum to the
    // channel total, and the run saw both demand and prefetch cycles.
    uint64_t demand_cycles = 0, prefetch_cycles = 0;
    for (unsigned ch = 0; ch < config.dram.channels; ++ch) {
        const std::string p = "dram.ch" + std::to_string(ch);
        const uint64_t demand = s.value(p + "DemandCycles");
        const uint64_t prefetch = s.value(p + "PrefetchCycles");
        const uint64_t writeback = s.value(p + "WritebackCycles");
        const uint64_t idle = s.value(p + "IdleCycles");
        EXPECT_EQ(demand + prefetch + writeback + idle,
                  s.value(p + "Cycles"))
            << "channel " << ch;
        demand_cycles += demand;
        prefetch_cycles += prefetch;
    }
    EXPECT_GT(demand_cycles, 0u);
    EXPECT_GT(prefetch_cycles, 0u);
    EXPECT_EQ(demand_cycles, s.value("dram.contentionDemandCycles"));
    EXPECT_EQ(prefetch_cycles,
              s.value("dram.contentionPrefetchCycles"));
}

/** Shadow bookkeeping must never perturb the simulation it observes:
 *  the same run with and without --shadow is cycle-identical. */
TEST(ShadowTags, ObservationDoesNotChangeTiming)
{
    setQuiet(true);
    SimConfig config;
    config.scheme = PrefetchScheme::Srp;
    RunOptions plain;
    plain.maxInstructions = 40'000;
    RunOptions shadowed = plain;
    shadowed.obs.shadow = true;
    const RunResult a = runWorkload("mcf", config, plain);
    const RunResult b = runWorkload("mcf", config, shadowed);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.trafficBytes, b.trafficBytes);
    EXPECT_EQ(a.l2MissesTotal, b.l2MissesTotal);
    EXPECT_EQ(a.prefetchFills, b.prefetchFills);
    // The pollution counters exist only in the shadowed run, so the
    // plain run's stat export stays byte-compatible with old
    // baselines.
    EXPECT_FALSE(a.stats.counters.count("mem.pollutionMisses"));
    EXPECT_TRUE(b.stats.counters.count("mem.pollutionMisses"));
}

} // namespace
} // namespace grp
