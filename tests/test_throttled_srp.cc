/** @file Unit tests for the accuracy-throttled SRP extension. */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "prefetch/throttled_srp.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

class ThrottledSrpTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setQuiet(true);
        config.scheme = PrefetchScheme::SrpThrottled;
    }

    /** Pull up to @p max candidates across all channels. */
    unsigned
    pull(ThrottledSrpEngine &engine, unsigned max)
    {
        unsigned issued = 0;
        while (issued < max) {
            bool any = false;
            for (unsigned ch = 0; ch < 4 && issued < max; ++ch) {
                if (engine.dequeuePrefetch(dram, ch)) {
                    ++issued;
                    any = true;
                }
            }
            if (!any)
                break;
        }
        return issued;
    }

    SimConfig config;
    DramSystem dram{DramConfig{}};
};

TEST_F(ThrottledSrpTest, BehavesLikeSrpWhileAccurate)
{
    ThrottledSrpEngine engine(config, 0.2, 16);
    engine.onL2DemandMiss(0x100000, 0, {});
    EXPECT_FALSE(engine.throttled());
    EXPECT_EQ(pull(engine, 63), 63u);
}

TEST_F(ThrottledSrpTest, ThrottlesWhenNothingIsUseful)
{
    ThrottledSrpEngine engine(config, 0.2, 16);
    // Issue several windows of prefetches with zero usefulness.
    for (unsigned region = 0; !engine.throttled() && region < 32;
         ++region) {
        engine.onL2DemandMiss(0x100000 + region * kRegionBytes, 0,
                              {});
        pull(engine, 63);
    }
    EXPECT_TRUE(engine.throttled());
    EXPECT_GT(engine.stats().value("throttleEvents"), 0u);
    // While throttled, nothing issues.
    engine.onL2DemandMiss(0x900000, 0, {});
    EXPECT_EQ(pull(engine, 8), 0u);
    EXPECT_GT(engine.stats().value("missesWhileThrottled"), 0u);
}

TEST_F(ThrottledSrpTest, UsefulFeedbackPreventsThrottle)
{
    ThrottledSrpEngine engine(config, 0.2, 16);
    for (unsigned region = 0; region < 32; ++region) {
        engine.onL2DemandMiss(0x100000 + region * kRegionBytes, 0,
                              {});
        const unsigned issued = pull(engine, 63);
        // Report a third of them useful: above the 20% floor.
        for (unsigned i = 0; i < issued / 3; ++i)
            engine.onPrefetchUseful(0);
    }
    EXPECT_FALSE(engine.throttled());
}

TEST_F(ThrottledSrpTest, ResumesAfterEnoughMisses)
{
    ThrottledSrpEngine engine(config, 0.9, 4);
    // A 90% floor with no feedback throttles after one window.
    for (unsigned region = 0; !engine.throttled() && region < 16;
         ++region) {
        engine.onL2DemandMiss(0x100000 + region * kRegionBytes, 0,
                              {});
        pull(engine, 63);
    }
    ASSERT_TRUE(engine.throttled());
    for (unsigned miss = 0; miss < 4; ++miss)
        engine.onL2DemandMiss(0xa00000 + miss * kRegionBytes, 0, {});
    EXPECT_FALSE(engine.throttled());
    EXPECT_EQ(engine.stats().value("resumes"), 1u);
    // The resuming miss allocates a region again.
    engine.onL2DemandMiss(0xf00000, 0, {});
    EXPECT_GT(pull(engine, 8), 0u);
}

TEST_F(ThrottledSrpTest, BadFloorIsFatal)
{
    EXPECT_THROW(ThrottledSrpEngine(config, 1.5, 4),
                 std::runtime_error);
}

TEST_F(ThrottledSrpTest, ResetUnthrottles)
{
    ThrottledSrpEngine engine(config, 0.9, 1024);
    for (unsigned region = 0; !engine.throttled() && region < 16;
         ++region) {
        engine.onL2DemandMiss(0x100000 + region * kRegionBytes, 0,
                              {});
        pull(engine, 63);
    }
    ASSERT_TRUE(engine.throttled());
    engine.reset();
    EXPECT_FALSE(engine.throttled());
    EXPECT_EQ(engine.stats().value("throttleEvents"), 0u);
}

} // namespace
} // namespace grp
