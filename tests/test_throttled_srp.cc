/** @file Unit tests for the accuracy-throttled SRP extension. */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "prefetch/throttled_srp.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

class ThrottledSrpTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setQuiet(true);
        config.scheme = PrefetchScheme::SrpThrottled;
    }

    /** The engine samples its accuracy epochs from this synthetic
     *  cumulative sample instead of a live MemorySystem. */
    adaptive::Signals::Source
    src()
    {
        return [this] { return feed; };
    }

    /** Pull up to @p max candidates across all channels. */
    unsigned
    pull(ThrottledSrpEngine &engine, unsigned max)
    {
        unsigned issued = 0;
        while (issued < max) {
            bool any = false;
            for (unsigned ch = 0; ch < 4 && issued < max; ++ch) {
                if (engine.dequeuePrefetch(dram, ch)) {
                    ++issued;
                    any = true;
                }
            }
            if (!any)
                break;
        }
        return issued;
    }

    /**
     * Drive one full evaluation window (kWindow dequeues), feeding
     * the synthetic sample as if every dequeue issued a prefetch of
     * which @p useful were eventually used. The useful count is fed
     * up front so the evaluation at the window's last dequeue sees
     * it; fresh regions are allocated on demand.
     */
    void
    window(ThrottledSrpEngine &engine, uint64_t useful)
    {
        feed.usefulPrefetches += useful;
        unsigned dequeued = 0;
        unsigned region = 0;
        while (dequeued < ThrottledSrpEngine::kWindow &&
               !engine.throttled()) {
            if (engine.dequeuePrefetch(dram, dequeued % 4)) {
                ++dequeued;
                ++feed.prefetchesIssued;
            } else {
                engine.onL2DemandMiss(base_ + region++ * kRegionBytes,
                                      0, {});
            }
        }
        base_ += 0x4000000; // Next window uses disjoint regions.
    }

    SimConfig config;
    DramSystem dram{DramConfig{}};
    adaptive::Sample feed;
    Addr base_ = 0x100000;
};

TEST_F(ThrottledSrpTest, BehavesLikeSrpWhileAccurate)
{
    ThrottledSrpEngine engine(config, src(), 0.2, 16);
    engine.onL2DemandMiss(0x100000, 0, {});
    EXPECT_FALSE(engine.throttled());
    EXPECT_EQ(pull(engine, 63), 63u);
}

TEST_F(ThrottledSrpTest, ThrottlesWhenNothingIsUseful)
{
    ThrottledSrpEngine engine(config, src(), 0.2, 16);
    window(engine, 0);
    EXPECT_TRUE(engine.throttled());
    EXPECT_GT(engine.stats().value("throttleEvents"), 0u);
    // While throttled, nothing issues and misses are counted as the
    // opportunity cost.
    engine.onL2DemandMiss(0x900000, 0, {});
    EXPECT_EQ(pull(engine, 8), 0u);
    EXPECT_GT(engine.stats().value("missesWhileThrottled"), 0u);
}

TEST_F(ThrottledSrpTest, UsefulFeedbackPreventsThrottle)
{
    ThrottledSrpEngine engine(config, src(), 0.2, 16);
    // Half of each window's issues prove useful: above the 20% floor.
    for (unsigned w = 0; w < 4; ++w)
        window(engine, ThrottledSrpEngine::kWindow / 2);
    EXPECT_FALSE(engine.throttled());
    EXPECT_EQ(engine.stats().value("throttleEvents"), 0u);
}

TEST_F(ThrottledSrpTest, WindowWithoutIssuesCarriesNoSignal)
{
    ThrottledSrpEngine engine(config, src(), 0.9, 16);
    // kWindow dequeues whose issues never reach the memory counters
    // (a filter ate every one): the epoch has no signal, so the
    // engine holds its current (running) state.
    unsigned dequeued = 0;
    unsigned region = 0;
    while (dequeued < ThrottledSrpEngine::kWindow) {
        if (engine.dequeuePrefetch(dram, dequeued % 4))
            ++dequeued;
        else
            engine.onL2DemandMiss(0x100000 + region++ * kRegionBytes,
                                  0, {});
    }
    EXPECT_FALSE(engine.throttled());
}

TEST_F(ThrottledSrpTest, ResumesAfterEnoughMisses)
{
    ThrottledSrpEngine engine(config, src(), 0.9, 4);
    window(engine, 0); // 0% accuracy under a 90% floor.
    ASSERT_TRUE(engine.throttled());
    for (unsigned miss = 0; miss < 4; ++miss)
        engine.onL2DemandMiss(0xa00000 + miss * kRegionBytes, 0, {});
    EXPECT_FALSE(engine.throttled());
    EXPECT_EQ(engine.stats().value("resumes"), 1u);
    // The resuming miss allocates a region again.
    engine.onL2DemandMiss(0xf00000, 0, {});
    EXPECT_GT(pull(engine, 8), 0u);
}

TEST_F(ThrottledSrpTest, BadFloorIsFatal)
{
    EXPECT_THROW(ThrottledSrpEngine(config, src(), 1.5, 4),
                 std::runtime_error);
}

TEST_F(ThrottledSrpTest, ResetUnthrottles)
{
    ThrottledSrpEngine engine(config, src(), 0.9, 1024);
    window(engine, 0);
    ASSERT_TRUE(engine.throttled());
    engine.reset();
    EXPECT_FALSE(engine.throttled());
    EXPECT_EQ(engine.stats().value("throttleEvents"), 0u);
}

} // namespace
} // namespace grp
