/** @file Unit tests for variable-size region analysis (§4.4). */

#include <gtest/gtest.h>

#include "compiler/builder.hh"
#include "compiler/hint_generator.hh"
#include "compiler/region_size.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

class RegionSizeTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }

    HintTable
    analyse(Program &prog)
    {
        HintTable table;
        HintGenerator generator(CompilerPolicy::Default, 1 << 20);
        generator.run(prog, table);
        return table;
    }

    FunctionalMemory mem;
};

TEST(EncodeCoeff, PowersAndRounding)
{
    EXPECT_EQ(RegionSizeAnalysis::encodeCoeff(1), 0);
    EXPECT_EQ(RegionSizeAnalysis::encodeCoeff(2), 1);
    EXPECT_EQ(RegionSizeAnalysis::encodeCoeff(8), 3);
    EXPECT_EQ(RegionSizeAnalysis::encodeCoeff(-8), 3);
    // 2^x closest: 7 -> 8 (x=3), 5 -> 4 (x=2); ties round down.
    EXPECT_EQ(RegionSizeAnalysis::encodeCoeff(7), 3);
    EXPECT_EQ(RegionSizeAnalysis::encodeCoeff(6), 2);
    EXPECT_EQ(RegionSizeAnalysis::encodeCoeff(5), 2);
    // Capped below the reserved value 7.
    EXPECT_EQ(RegionSizeAnalysis::encodeCoeff(1 << 10), 6);
    EXPECT_EQ(RegionSizeAnalysis::encodeCoeff(0), kFixedRegionCoeff);
}

TEST_F(RegionSizeTest, ShortInnerLoopGetsSizeHint)
{
    // The mesa/sphinx shape: short known-bound run through a pointer.
    ProgramBuilder b(mem);
    const PtrId p = b.ptr("p", kNoId, mem.heapAlloc(4096, 64));
    b.forLoop(0, 1000);
    b.ptrUpdateConst(p, 4096); // Induction pointer (spatial base).
    const VarId j = b.forLoop(0, 12);
    const RefId ref =
        b.ptrArrayRef(p, 8, Subscript::affine(Affine::var(j)));
    b.end();
    b.end();
    Program prog = b.build();
    HintTable table = analyse(prog);

    ASSERT_TRUE(table.get(ref).spatial());
    EXPECT_TRUE(table.get(ref).sizeValid());
    EXPECT_EQ(table.get(ref).sizeCoeff, 3); // 8-byte stride.
    EXPECT_EQ(table.get(ref).loopBound, 12u);
    // 12 << 3 = 96 bytes -> 2 blocks.
    EXPECT_EQ(table.get(ref).regionBlocks(64), 2u);
}

TEST_F(RegionSizeTest, UnknownBoundStaysFixed)
{
    ProgramBuilder b(mem);
    const ArrayId a = b.array("a", 8, {1 << 16});
    const VarId i = b.forLoop(0, 64, 1, /*bound_known=*/false);
    const RefId ref =
        b.arrayRef(a, {Subscript::affine(Affine::var(i))});
    b.end();
    Program prog = b.build();
    HintTable table = analyse(prog);
    EXPECT_TRUE(table.get(ref).spatial());
    EXPECT_FALSE(table.get(ref).sizeValid());
    EXPECT_EQ(table.get(ref).regionBlocks(64), 64u);
}

TEST_F(RegionSizeTest, SequentialContinuationSuppressesHint)
{
    // The applu shape: a[16*r + j] — the outer loop continues the
    // run, so clamping the region to the inner bound would lose
    // useful prefetches.
    ProgramBuilder b(mem);
    const ArrayId a = b.array("a", 8, {1 << 16});
    const VarId r = b.forLoop(0, 1024);
    const VarId j = b.forLoop(0, 16);
    Affine expr = Affine::var(r, 16);
    expr.terms.push_back({j, 1});
    const RefId ref = b.arrayRef(a, {Subscript::affine(expr)});
    b.end();
    b.end();
    Program prog = b.build();
    HintTable table = analyse(prog);
    EXPECT_TRUE(table.get(ref).spatial());
    EXPECT_FALSE(table.get(ref).sizeValid());
}

TEST_F(RegionSizeTest, MultiDimContinuationSuppressesHint)
{
    // rsd(v,i,...) with 5 variables: the i loop continues the v run
    // through the dimension stride.
    ProgramBuilder b(mem);
    ArrayOpts fortran;
    fortran.columnMajor = true;
    const ArrayId a = b.array("a", 8, {5, 64, 64}, fortran);
    const VarId k = b.forLoop(0, 64);
    const VarId i = b.forLoop(0, 64);
    const VarId v = b.forLoop(0, 5);
    const RefId ref =
        b.arrayRef(a, {Subscript::affine(Affine::var(v)),
                       Subscript::affine(Affine::var(i)),
                       Subscript::affine(Affine::var(k))});
    b.end();
    b.end();
    b.end();
    Program prog = b.build();
    HintTable table = analyse(prog);
    EXPECT_TRUE(table.get(ref).spatial());
    EXPECT_FALSE(table.get(ref).sizeValid());
}

TEST_F(RegionSizeTest, NonContinuingOuterLoopKeepsHint)
{
    // a[4096*r + j]: the outer loop jumps far past the inner span,
    // so the inner bound is the true spatial extent.
    ProgramBuilder b(mem);
    const ArrayId a = b.array("a", 8, {1 << 20});
    const VarId r = b.forLoop(0, 64);
    const VarId j = b.forLoop(0, 16);
    Affine expr = Affine::var(r, 4096);
    expr.terms.push_back({j, 1});
    const RefId ref = b.arrayRef(a, {Subscript::affine(expr)});
    b.end();
    b.end();
    Program prog = b.build();
    HintTable table = analyse(prog);
    EXPECT_TRUE(table.get(ref).spatial());
    EXPECT_TRUE(table.get(ref).sizeValid());
    EXPECT_EQ(table.get(ref).loopBound, 16u);
}

TEST_F(RegionSizeTest, NonSpatialReferencesGetNoSizeHint)
{
    ProgramBuilder b(mem);
    const ArrayId a = b.array("a", 8, {1 << 16});
    b.forLoop(0, 16);
    const RefId ref = b.arrayRef(a, {Subscript::random(1 << 16)});
    b.end();
    Program prog = b.build();
    HintTable table = analyse(prog);
    EXPECT_FALSE(table.get(ref).sizeValid());
}

TEST_F(RegionSizeTest, LongBoundClampsToFullRegion)
{
    ProgramBuilder b(mem);
    const ArrayId a = b.array("a", 8, {1 << 20});
    const VarId i = b.forLoop(0, 1 << 20);
    const RefId ref =
        b.arrayRef(a, {Subscript::affine(Affine::var(i))});
    b.end();
    Program prog = b.build();
    HintTable table = analyse(prog);
    EXPECT_TRUE(table.get(ref).sizeValid());
    EXPECT_EQ(table.get(ref).regionBlocks(64), 64u);
}

} // namespace
} // namespace grp
