/** @file Tests for the per-hint-site profiler: unit-level funnel
 *  accounting, worst-offender ranking, the JSON export schema, and —
 *  the property the whole design hangs on — exact reconciliation of
 *  the per-site table with the engine-level StatRegistry totals over
 *  a real run. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "harness/runner.hh"
#include "obs/json_reader.hh"
#include "obs/site_profile.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

/** Enables the global profiler for one test and always restores the
 *  disabled/empty state, so tests cannot leak into each other. */
class ProfilerGuard
{
  public:
    ProfilerGuard()
    {
        obs::SiteProfiler::instance().clear();
        obs::SiteProfiler::instance().setEnabled(true);
    }
    ~ProfilerGuard()
    {
        obs::SiteProfiler::instance().setEnabled(false);
        obs::SiteProfiler::instance().clear();
    }
};

TEST(SiteProfile, FunnelAccounting)
{
    ProfilerGuard guard;
    obs::SiteProfiler &prof = obs::SiteProfiler::instance();

    prof.noteTrigger(7, obs::HintClass::Spatial);
    prof.noteEnqueue(7, obs::HintClass::Spatial, 12);
    prof.noteDrop(7, obs::HintClass::Spatial, 2);
    prof.noteIssue(7, obs::HintClass::Spatial);
    prof.noteFiltered(7, obs::HintClass::Spatial);
    prof.noteFill(7, obs::HintClass::Spatial, /*warm=*/false);
    prof.noteUseful(7, obs::HintClass::Spatial, 40, /*warm=*/false);
    prof.noteFill(7, obs::HintClass::Spatial, /*warm=*/true);
    prof.noteUseful(7, obs::HintClass::Spatial, 9, /*warm=*/true);
    prof.noteEvictedUnused(7, obs::HintClass::Spatial,
                           /*warm=*/false);

    const obs::SiteCounters *site =
        prof.find(7, obs::HintClass::Spatial);
    ASSERT_TRUE(site);
    EXPECT_EQ(site->triggers, 1u);
    EXPECT_EQ(site->enqueued, 12u);
    EXPECT_EQ(site->dropped, 2u);
    EXPECT_EQ(site->issued, 1u);
    EXPECT_EQ(site->filtered, 1u);
    EXPECT_EQ(site->fills, 1u);
    EXPECT_EQ(site->useful, 1u);
    EXPECT_EQ(site->evictedUnused, 1u);
    EXPECT_EQ(site->warmupFills, 1u);
    EXPECT_EQ(site->warmupUseful, 1u);
    // Only the measured-window use sampled the distance.
    EXPECT_EQ(site->fillToUse.samples(), 1u);
    EXPECT_EQ(site->fillToUse.sum(), 40u);
    EXPECT_DOUBLE_EQ(site->accuracy(), 1.0);

    // The same ref under a different hint class is a distinct site.
    prof.noteIssue(7, obs::HintClass::Pointer);
    EXPECT_EQ(prof.siteCount(), 2u);
    EXPECT_FALSE(prof.find(8, obs::HintClass::Spatial));

    // Aggregate StatGroup mirrors the table's column sums.
    EXPECT_EQ(prof.stats().value("issued"), 2u);
    EXPECT_EQ(prof.stats().value("enqueued"), 12u);
    EXPECT_EQ(prof.stats().value("useful"), 1u);
    EXPECT_EQ(prof.stats().value("sitesTracked"), 2u);
}

TEST(SiteProfile, DisabledProfilerRecordsNothing)
{
    obs::SiteProfiler &prof = obs::SiteProfiler::instance();
    prof.clear();
    ASSERT_FALSE(prof.enabled());
    // GRP_PROFILE checks enabled() before forwarding.
    GRP_PROFILE(noteIssue(3, obs::HintClass::Spatial));
    EXPECT_EQ(prof.siteCount(), 0u);
}

TEST(SiteProfile, InvalidRefProfilesAsUnattributedSite)
{
    ProfilerGuard guard;
    obs::SiteProfiler &prof = obs::SiteProfiler::instance();
    prof.noteFill(kInvalidRefId, obs::HintClass::Pointer, false);
    ASSERT_EQ(prof.siteCount(), 1u);
    EXPECT_EQ(prof.sites().begin()->first.site(), -1);
}

TEST(SiteProfile, RankedOrdersWorstFirst)
{
    ProfilerGuard guard;
    obs::SiteProfiler &prof = obs::SiteProfiler::instance();

    // Site 1: accurate. Site 2: wasteful. Site 3: issued, no result.
    prof.noteIssue(1, obs::HintClass::Spatial);
    prof.noteFill(1, obs::HintClass::Spatial, false);
    prof.noteUseful(1, obs::HintClass::Spatial, 5, false);
    for (int i = 0; i < 3; ++i) {
        prof.noteIssue(2, obs::HintClass::Pointer);
        prof.noteFill(2, obs::HintClass::Pointer, false);
        prof.noteEvictedUnused(2, obs::HintClass::Pointer, false);
    }
    prof.noteIssue(3, obs::HintClass::Indirect);

    const auto ranked = prof.ranked();
    ASSERT_EQ(ranked.size(), 3u);
    // Most wasted fills first; ties break toward lower accuracy.
    EXPECT_EQ(ranked[0]->first.ref, 2u);
    EXPECT_EQ(ranked[1]->first.ref, 3u);
    EXPECT_EQ(ranked[2]->first.ref, 1u);

    std::ostringstream report;
    prof.writeReport(report, 2);
    EXPECT_NE(report.str().find("pointer"), std::string::npos);
    // Top-2 report must not contain the healthy site.
    EXPECT_EQ(report.str().find("spatial"), std::string::npos);
}

TEST(SiteProfile, ExportJsonSchema)
{
    ProfilerGuard guard;
    obs::SiteProfiler &prof = obs::SiteProfiler::instance();
    prof.noteIssue(5, obs::HintClass::Spatial);
    prof.noteFill(5, obs::HintClass::Spatial, false);
    prof.noteUseful(5, obs::HintClass::Spatial, 17, false);

    std::ostringstream os;
    prof.exportJson(os);
    std::string error;
    auto doc = obs::parseJson(os.str(), &error);
    ASSERT_TRUE(doc) << error;
    EXPECT_EQ(doc->find("schema")->asString(), "grp-site-profile-v1");
    const obs::JsonValue *sites = doc->find("sites");
    ASSERT_TRUE(sites && sites->isArray());
    ASSERT_EQ(sites->asArray().size(), 1u);
    const obs::JsonValue &site = sites->asArray()[0];
    EXPECT_EQ(site.find("site")->asNumber(), 5.0);
    EXPECT_EQ(site.find("hint")->asString(), "spatial");
    EXPECT_EQ(site.find("useful")->asNumber(), 1.0);
    EXPECT_EQ(site.findPath("fillToUse.p50")->asNumber(), 17.0);
    EXPECT_EQ(doc->findPath("totals.issued")->asNumber(), 1.0);
}

/** The acceptance criterion for the profiler: per-site sums must
 *  reconcile exactly with the engine-level registry totals over the
 *  measured window of a real run. */
TEST(SiteProfile, ReconcilesWithRegistryTotals)
{
    setQuiet(true);
    const std::string path =
        ::testing::TempDir() + "grp_site_profile.json";
    SimConfig config;
    config.scheme = PrefetchScheme::GrpVar;
    RunOptions opts;
    opts.maxInstructions = 60'000;
    opts.obs.siteProfilePath = path;
    const RunResult result = runWorkload("mcf", config, opts);
    ASSERT_GT(result.prefetchFills, 0u);

    auto read = [&](const std::string &text) {
        std::string error;
        auto doc = obs::parseJson(text, &error);
        EXPECT_TRUE(doc) << error;
        return doc;
    };
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::ostringstream text;
    text << in.rdbuf();
    auto doc = read(text.str());
    ASSERT_TRUE(doc);

    uint64_t issued = 0, useful = 0, warm_useful = 0, evicted = 0;
    uint64_t samples = 0;
    for (const obs::JsonValue &site :
         doc->find("sites")->asArray()) {
        issued += static_cast<uint64_t>(
            site.find("issued")->asNumber());
        useful += static_cast<uint64_t>(
            site.find("useful")->asNumber());
        warm_useful += static_cast<uint64_t>(
            site.find("warmupUseful")->asNumber());
        evicted += static_cast<uint64_t>(
            site.find("evictedUnused")->asNumber());
        samples += static_cast<uint64_t>(
            site.findPath("fillToUse.samples")->asNumber());
    }

    // Sums over the table == the memory system's measured counters.
    EXPECT_EQ(issued, result.stats.value("mem.prefetchesIssued"));
    EXPECT_EQ(issued, result.prefetchFills);
    EXPECT_EQ(useful, result.usefulPrefetches);
    EXPECT_EQ(warm_useful, result.warmupUsefulPrefetches);
    EXPECT_EQ(evicted,
              result.stats.value("mem.prefetchEvictedUnused"));
    EXPECT_EQ(samples, result.usefulPrefetches);

    // The registry snapshot carries the aggregate group while the
    // profiler is active, and it must agree with the table sums.
    EXPECT_EQ(result.stats.value("siteProfile.issued"), issued);
    EXPECT_EQ(result.stats.value("siteProfile.useful"), useful);

    // The totals block of the export matches too.
    EXPECT_EQ(static_cast<uint64_t>(
                  doc->findPath("totals.issued")->asNumber()),
              issued);

    // The run-scoped guard restored the global profiler.
    EXPECT_FALSE(obs::SiteProfiler::instance().enabled());
    EXPECT_EQ(obs::SiteProfiler::instance().siteCount(), 0u);
    std::remove(path.c_str());
}

/** The accuracy-clamp counter registers as an explicit zero, so its
 *  absence can never be confused with health. */
TEST(SiteProfile, AccuracyClampCounterExportsZero)
{
    setQuiet(true);
    SimConfig config;
    config.scheme = PrefetchScheme::GrpVar;
    RunOptions opts;
    opts.maxInstructions = 20'000;
    const RunResult result = runWorkload("mcf", config, opts);
    ASSERT_TRUE(result.stats.counters.count("mem.accuracyClampEvents"));
    EXPECT_EQ(result.stats.value("mem.accuracyClampEvents"), 0u);
    EXPECT_LE(result.usefulPrefetches, result.prefetchFills);
}

} // namespace
} // namespace grp
