/** @file Differential tests: decoded interpreter vs the tree walker. */

#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/logging.hh"
#include "workloads/interpreter.hh"
#include "workloads/kernels.hh"
#include "workloads/predecode.hh"
#include "workloads/workload.hh"

namespace grp
{
namespace
{

class PredecodeTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }

    static void
    expectSameOp(const TraceOp &a, const TraceOp &b,
                 const std::string &name, uint64_t k)
    {
        ASSERT_EQ(a.kind, b.kind) << name << " op " << k;
        ASSERT_EQ(a.addr, b.addr) << name << " op " << k;
        ASSERT_EQ(a.refId, b.refId) << name << " op " << k;
        ASSERT_EQ(a.base, b.base) << name << " op " << k;
        ASSERT_EQ(a.elemSize, b.elemSize) << name << " op " << k;
    }

    /** Drive both interpreters @p count ops and assert element-for-
     *  element stream equality (including end-of-trace position). */
    static void
    expectSameStream(Interpreter &tree, DecodedInterpreter &decoded,
                     const std::string &name, uint64_t count)
    {
        TraceOp a, b;
        for (uint64_t k = 0; k < count; ++k) {
            const bool more_tree = tree.next(a);
            const bool more_decoded = decoded.next(b);
            ASSERT_EQ(more_tree, more_decoded) << name << " op " << k;
            if (!more_tree)
                return;
            expectSameOp(a, b, name, k);
        }
        ASSERT_EQ(tree.opsEmitted(), decoded.opsEmitted()) << name;
    }
};

TEST_F(PredecodeTest, AllKernelsEmitIdenticalStreams)
{
    for (const auto &name : workloadNames()) {
        FunctionalMemory m1, m2;
        auto w1 = makeWorkload(name);
        auto w2 = makeWorkload(name);
        Program p1 = w1->build(m1, 42);
        Program p2 = w2->build(m2, 42);
        Interpreter tree(p1, m1, 42);
        DecodedInterpreter decoded(p2, m2, 42);
        expectSameStream(tree, decoded, name, 50'000);
    }
}

TEST_F(PredecodeTest, IdenticalAcrossSeeds)
{
    // Seeds exercise the RNG-draw-order contract (Random subscripts,
    // tree descents) on the irregular kernels.
    for (const char *name : {"twolf", "mcf", "vpr", "sphinx", "gap"}) {
        for (uint64_t seed : {1ull, 7ull, 1234567ull}) {
            FunctionalMemory m1, m2;
            auto w1 = makeWorkload(name);
            auto w2 = makeWorkload(name);
            Program p1 = w1->build(m1, seed);
            Program p2 = w2->build(m2, seed);
            Interpreter tree(p1, m1, seed);
            DecodedInterpreter decoded(p2, m2, seed);
            expectSameStream(tree, decoded, name, 20'000);
        }
    }
}

/** A compact synthetic program covering every statement and loop
 *  shape: nested counted loops (one zero-trip), indirect and random
 *  subscripts, a linked-list chase with field selection, an induction
 *  pointer, compute runs and an indirect-prefetch op. Small enough
 *  that full multi-pass exhaustion stays fast. */
static Program
buildSyntheticProgram(FunctionalMemory &mem)
{
    Program prog;

    ArrayDecl grid;
    grid.name = "grid";
    grid.elemSize = 8;
    grid.extents = {8, 16};
    grid.base = mem.staticAlloc(8 * 16 * 8);
    prog.arrays.push_back(grid);

    ArrayDecl index;
    index.name = "index";
    index.elemSize = 4;
    index.extents = {32};
    index.base = mem.staticAlloc(32 * 4);
    for (uint64_t i = 0; i < 32; ++i)
        mem.write32(index.base + i * 4, static_cast<uint32_t>(i * 5));
    prog.arrays.push_back(index);

    // A five-node list in the heap: {next @0, child @8, payload @16}.
    constexpr uint64_t kNodeBytes = 24;
    Addr nodes[5];
    for (Addr &node : nodes)
        node = mem.heapAlloc(kNodeBytes);
    for (int i = 0; i < 5; ++i) {
        mem.write64(nodes[i] + 0, i + 1 < 5 ? nodes[i + 1] : 0);
        mem.write64(nodes[i] + 8, nodes[(i + 2) % 5]);
    }

    PtrDecl head;
    head.name = "head";
    head.initial = nodes[0];
    prog.ptrs.push_back(head);
    PtrDecl walker;
    walker.name = "walker";
    prog.ptrs.push_back(walker);
    PtrDecl cursor;
    cursor.name = "cursor";
    cursor.initial = grid.base;
    prog.ptrs.push_back(cursor);

    const VarId i = prog.allocVar();
    const VarId j = prog.allocVar();
    const VarId z = prog.allocVar();

    Loop inner;
    inner.var = j;
    inner.lower = 0;
    inner.upper = 16;
    inner.step = 3;
    {
        Stmt ref;
        ref.kind = StmtKind::ArrayRef;
        ref.refId = prog.allocRef();
        ref.array = 0;
        ref.subs = {Subscript::affine(Affine::var(i)),
                    Subscript::affine(Affine::var(j))};
        inner.body.push_back(Node::of(ref));

        Stmt indirect;
        indirect.kind = StmtKind::ArrayRef;
        indirect.refId = prog.allocRef();
        indirect.isWrite = true;
        indirect.array = 0;
        indirect.subs = {Subscript::affine(Affine::var(i)),
                         Subscript::indirect(1, Affine::var(j), 3, 1)};
        indirect.subs[1].indexRefId = prog.allocRef();
        inner.body.push_back(Node::of(indirect));

        Stmt rand_ref;
        rand_ref.kind = StmtKind::ArrayRef;
        rand_ref.refId = prog.allocRef();
        rand_ref.array = 0;
        rand_ref.subs = {Subscript::affine(Affine::var(i)),
                         Subscript::random(16)};
        inner.body.push_back(Node::of(rand_ref));

        Stmt pf;
        pf.kind = StmtKind::IndirectPf;
        pf.refId = prog.allocRef();
        pf.targetArray = 0;
        pf.indexArray = 1;
        pf.indexExpr = Affine::var(j);
        pf.everyN = 2;
        inner.body.push_back(Node::of(pf));

        Stmt compute;
        compute.kind = StmtKind::Compute;
        compute.count = 3;
        inner.body.push_back(Node::of(compute));
    }

    Loop zero_trip;
    zero_trip.var = z;
    zero_trip.lower = 4;
    zero_trip.upper = 4;
    {
        Stmt never;
        never.kind = StmtKind::ArrayRef;
        never.refId = prog.allocRef();
        never.array = 0;
        never.subs = {Subscript::affine(Affine::of(0)),
                      Subscript::affine(Affine::of(0))};
        zero_trip.body.push_back(Node::of(never));
    }

    Loop outer;
    outer.var = i;
    outer.lower = 0;
    outer.upper = 8;
    outer.body.push_back(Node::of(inner));
    outer.body.push_back(Node::of(zero_trip));
    prog.top.push_back(Node::of(outer));

    Stmt select;
    select.kind = StmtKind::PtrSelectField;
    select.refId = prog.allocRef();
    select.srcPtr = 0;
    select.ptr = 1;
    select.offsetChoices = {0, 8};
    prog.top.push_back(Node::of(select));

    Loop chase;
    chase.kind = Loop::Kind::PtrChase;
    chase.chasePtr = 1;
    chase.maxIter = 7;
    {
        Stmt payload;
        payload.kind = StmtKind::PtrRef;
        payload.refId = prog.allocRef();
        payload.ptr = 1;
        payload.offset = 16;
        payload.isWrite = true;
        chase.body.push_back(Node::of(payload));

        Stmt walk;
        walk.kind = StmtKind::PtrUpdateField;
        walk.refId = prog.allocRef();
        walk.ptr = 1;
        walk.offset = 0;
        chase.body.push_back(Node::of(walk));
    }
    prog.top.push_back(Node::of(chase));

    Stmt row;
    row.kind = StmtKind::PtrArrayRef;
    row.refId = prog.allocRef();
    row.ptr = 2;
    row.elemSize = 8;
    row.subs = {Subscript::random(16)};
    prog.top.push_back(Node::of(row));

    Stmt bump;
    bump.kind = StmtKind::PtrUpdateConst;
    bump.ptr = 2;
    bump.stride = 64;
    prog.top.push_back(Node::of(bump));

    return prog;
}

TEST_F(PredecodeTest, BoundedPassesFinishAtTheSameOp)
{
    // With a finite pass budget both interpreters must exhaust at the
    // same stream position with the same emitted-op count.
    FunctionalMemory m1, m2;
    Program p1 = buildSyntheticProgram(m1);
    Program p2 = buildSyntheticProgram(m2);
    Interpreter tree(p1, m1, 42, 3);
    DecodedInterpreter decoded(p2, m2, 42, 3);
    TraceOp a, b;
    uint64_t k = 0;
    for (;;) {
        const bool more_tree = tree.next(a);
        const bool more_decoded = decoded.next(b);
        ASSERT_EQ(more_tree, more_decoded) << "op " << k;
        if (!more_tree)
            break;
        expectSameOp(a, b, "synthetic", k);
        ++k;
    }
    EXPECT_GT(k, 0u);
    EXPECT_EQ(tree.opsEmitted(), decoded.opsEmitted());
    // Exhausted sources stay exhausted.
    EXPECT_FALSE(decoded.next(b));
}

TEST_F(PredecodeTest, ResetReplaysTheTreeWalkersResetStream)
{
    // reset() must mirror the tree walker's reset exactly — including
    // its quirk of leaving stale induction-variable values behind, so
    // the post-reset streams must still match each other.
    FunctionalMemory m1, m2;
    auto w1 = makeWorkload("twolf");
    auto w2 = makeWorkload("twolf");
    Program p1 = w1->build(m1, 42);
    Program p2 = w2->build(m2, 42);
    Interpreter tree(p1, m1, 42);
    DecodedInterpreter decoded(p2, m2, 42);
    TraceOp a, b;
    for (int k = 0; k < 12'345; ++k) {
        ASSERT_TRUE(tree.next(a));
        ASSERT_TRUE(decoded.next(b));
    }
    tree.reset();
    decoded.reset();
    EXPECT_EQ(decoded.opsEmitted(), 0u);
    expectSameStream(tree, decoded, "twolf/reset", 20'000);
}

TEST_F(PredecodeTest, SharedDecodedProgramIsReusable)
{
    // One DecodedProgram, many interpreters: the lowered form is
    // immutable, so a second interpreter over the same decode must
    // reproduce the stream of an owning interpreter from scratch.
    FunctionalMemory m1, m2;
    auto w1 = makeWorkload("mcf");
    auto w2 = makeWorkload("mcf");
    Program p1 = w1->build(m1, 9);
    Program p2 = w2->build(m2, 9);
    const DecodedProgram shared = DecodedProgram::lower(p1);
    DecodedInterpreter first(shared, m1, 9);
    DecodedInterpreter second(p2, m2, 9);
    TraceOp a, b;
    for (int k = 0; k < 10'000; ++k) {
        ASSERT_TRUE(first.next(a));
        ASSERT_TRUE(second.next(b));
        expectSameOp(a, b, "mcf/shared", k);
    }
}

TEST_F(PredecodeTest, InterpModeParsesTheEnvironment)
{
    unsetenv("GRP_INTERP");
    EXPECT_EQ(interpMode(), InterpMode::Decoded);
    setenv("GRP_INTERP", "", 1);
    EXPECT_EQ(interpMode(), InterpMode::Decoded);
    setenv("GRP_INTERP", "decoded", 1);
    EXPECT_EQ(interpMode(), InterpMode::Decoded);
    setenv("GRP_INTERP", "tree", 1);
    EXPECT_EQ(interpMode(), InterpMode::Tree);
    setenv("GRP_INTERP", "bogus", 1);
    EXPECT_THROW(interpMode(), std::runtime_error);
    unsetenv("GRP_INTERP");
}

TEST_F(PredecodeTest, FactoryHonoursInterpMode)
{
    FunctionalMemory m1, m2;
    auto w1 = makeWorkload("gzip");
    auto w2 = makeWorkload("gzip");
    Program p1 = w1->build(m1, 42);
    Program p2 = w2->build(m2, 42);
    setenv("GRP_INTERP", "tree", 1);
    auto tree = makeTraceSource(p1, m1, 42);
    setenv("GRP_INTERP", "decoded", 1);
    auto decoded = makeTraceSource(p2, m2, 42);
    unsetenv("GRP_INTERP");
    EXPECT_NE(dynamic_cast<Interpreter *>(tree.get()), nullptr);
    EXPECT_NE(dynamic_cast<DecodedInterpreter *>(decoded.get()),
              nullptr);
    TraceOp a, b;
    for (int k = 0; k < 5'000; ++k) {
        ASSERT_TRUE(tree->next(a));
        ASSERT_TRUE(decoded->next(b));
        expectSameOp(a, b, "gzip/factory", k);
    }
}

} // namespace
} // namespace grp
