/** @file Unit tests for the experiment runner plumbing. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "harness/runner.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

class RunnerTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setQuiet(true);
        unsetenv("GRP_INSTRUCTIONS");
    }

    void TearDown() override { unsetenv("GRP_INSTRUCTIONS"); }
};

TEST_F(RunnerTest, InstructionBudgetDefaults)
{
    EXPECT_EQ(instructionBudget(123), 123u);
}

TEST_F(RunnerTest, InstructionBudgetReadsEnvironment)
{
    setenv("GRP_INSTRUCTIONS", "777000", 1);
    EXPECT_EQ(instructionBudget(123), 777'000u);
}

TEST_F(RunnerTest, MalformedEnvironmentIsFatal)
{
    // Silent atoi-style fallback ran the wrong experiment for hours
    // at paper-scale budgets; malformed knobs now abort up front.
    setenv("GRP_INSTRUCTIONS", "nonsense", 1);
    EXPECT_THROW(instructionBudget(123), std::runtime_error);
    setenv("GRP_INSTRUCTIONS", "-5", 1);
    EXPECT_THROW(instructionBudget(123), std::runtime_error);
    setenv("GRP_INSTRUCTIONS", "20k", 1);
    EXPECT_THROW(instructionBudget(123), std::runtime_error);
    // Empty still means unset; zero still defers to the fallback.
    setenv("GRP_INSTRUCTIONS", "", 1);
    EXPECT_EQ(instructionBudget(123), 123u);
    setenv("GRP_INSTRUCTIONS", "0", 1);
    EXPECT_EQ(instructionBudget(123), 123u);
}

TEST_F(RunnerTest, WarmupDefaultsToAQuarter)
{
    SimConfig config;
    RunOptions opts;
    opts.maxInstructions = 40'000; // Warmup defaults to 10'000.
    const RunResult result = runWorkload("crafty", config, opts);
    // The measured segment is maxInstructions long (within the
    // retire-width tolerance), not max + warmup.
    EXPECT_LT(result.instructions, 41'000u);
    EXPECT_GT(result.instructions, 39'000u);
}

TEST_F(RunnerTest, ZeroWarmupMeasuresEverything)
{
    SimConfig config;
    RunOptions opts;
    opts.maxInstructions = 20'000;
    opts.warmupInstructions = 0;
    const RunResult result = runWorkload("crafty", config, opts);
    EXPECT_GE(result.instructions + 4, 20'000u);
}

TEST_F(RunnerTest, MissRateUsesDemandAccesses)
{
    RunResult result;
    result.l2DemandAccesses = 200;
    result.l2MissesTotal = 50;
    EXPECT_DOUBLE_EQ(result.missRatePct(), 25.0);
    RunResult empty;
    EXPECT_DOUBLE_EQ(empty.missRatePct(), 0.0);
}

TEST_F(RunnerTest, AccuracyClampsAndGuards)
{
    RunResult result;
    EXPECT_DOUBLE_EQ(result.accuracy(), 0.0);
    result.prefetchFills = 10;
    result.usefulPrefetches = 5;
    EXPECT_DOUBLE_EQ(result.accuracy(), 0.5);
    result.usefulPrefetches = 15; // Warmup boundary artefact.
    EXPECT_DOUBLE_EQ(result.accuracy(), 1.0);
}

TEST_F(RunnerTest, SeedChangesIrregularRuns)
{
    SimConfig config;
    RunOptions a, b;
    a.maxInstructions = b.maxInstructions = 20'000;
    a.seed = 1;
    b.seed = 2;
    const RunResult ra = runWorkload("twolf", config, a);
    const RunResult rb = runWorkload("twolf", config, b);
    EXPECT_NE(ra.cycles, rb.cycles);
}

TEST_F(RunnerTest, ResultCarriesSchemeAndPerfection)
{
    SimConfig config;
    config.scheme = PrefetchScheme::Srp;
    RunOptions opts;
    opts.maxInstructions = 10'000;
    const RunResult result = runWorkload("gzip", config, opts);
    EXPECT_EQ(result.scheme, PrefetchScheme::Srp);
    EXPECT_EQ(result.perfection, Perfection::None);
    EXPECT_EQ(result.workload, "gzip");
}

} // namespace
} // namespace grp
