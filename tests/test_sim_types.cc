/** @file Unit tests for the fundamental address arithmetic. */

#include <gtest/gtest.h>

#include "sim/types.hh"

namespace grp
{
namespace
{

TEST(Types, BlockAlignClearsLowBits)
{
    EXPECT_EQ(blockAlign(0x0), 0x0u);
    EXPECT_EQ(blockAlign(0x3f), 0x0u);
    EXPECT_EQ(blockAlign(0x40), 0x40u);
    EXPECT_EQ(blockAlign(0x1234'5678), 0x1234'5640u);
}

TEST(Types, RegionAlignClearsTwelveBits)
{
    EXPECT_EQ(regionAlign(0xfff), 0x0u);
    EXPECT_EQ(regionAlign(0x1000), 0x1000u);
    EXPECT_EQ(regionAlign(0x1fff), 0x1000u);
}

TEST(Types, BlockInRegionCoversAllSlots)
{
    EXPECT_EQ(blockInRegion(0x0), 0u);
    EXPECT_EQ(blockInRegion(0x40), 1u);
    EXPECT_EQ(blockInRegion(0xfc0), 63u);
    EXPECT_EQ(blockInRegion(0x1000), 0u);
}

TEST(Types, BlockNumber)
{
    EXPECT_EQ(blockNumber(0x0), 0u);
    EXPECT_EQ(blockNumber(0x7f), 1u);
    EXPECT_EQ(blockNumber(0x1000), 64u);
}

TEST(Types, RegionHoldsSixtyFourBlocks)
{
    EXPECT_EQ(kBlocksPerRegion, 64u);
    EXPECT_EQ(kRegionBytes / kBlockBytes, kBlocksPerRegion);
    EXPECT_EQ(1u << kBlockShift, kBlockBytes);
    EXPECT_EQ(1u << kRegionShift, kRegionBytes);
}

TEST(Types, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ull << 40));
    EXPECT_FALSE(isPowerOfTwo((1ull << 40) + 1));
}

TEST(Types, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(1ull << 33), 33u);
}

TEST(Types, NextPowerOfTwo)
{
    EXPECT_EQ(nextPowerOfTwo(1), 1u);
    EXPECT_EQ(nextPowerOfTwo(2), 2u);
    EXPECT_EQ(nextPowerOfTwo(3), 4u);
    EXPECT_EQ(nextPowerOfTwo(63), 64u);
    EXPECT_EQ(nextPowerOfTwo(65), 128u);
}

/** Property: alignment is idempotent and monotone over a sweep. */
class AlignmentProperty : public ::testing::TestWithParam<Addr>
{
};

TEST_P(AlignmentProperty, Idempotent)
{
    const Addr addr = GetParam();
    EXPECT_EQ(blockAlign(blockAlign(addr)), blockAlign(addr));
    EXPECT_EQ(regionAlign(regionAlign(addr)), regionAlign(addr));
    EXPECT_LE(blockAlign(addr), addr);
    EXPECT_LE(regionAlign(addr), blockAlign(addr));
    EXPECT_EQ(regionAlign(addr) + blockInRegion(addr) * kBlockBytes,
              blockAlign(addr));
}

INSTANTIATE_TEST_SUITE_P(Sweep, AlignmentProperty,
                         ::testing::Values(0ull, 1ull, 63ull, 64ull,
                                           4095ull, 4096ull,
                                           0xdeadbeefull,
                                           0xffff'ffff'ffc0ull));

} // namespace
} // namespace grp
