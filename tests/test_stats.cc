/** @file Unit tests for counters, distributions and group dumps. */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/stats.hh"

namespace grp
{
namespace
{

TEST(Counter, IncrementAndAdd)
{
    Counter counter;
    EXPECT_EQ(counter.value(), 0u);
    ++counter;
    counter += 41;
    EXPECT_EQ(counter.value(), 42u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(Distribution, SamplesAndMoments)
{
    Distribution dist;
    dist.sample(2);
    dist.sample(2);
    dist.sample(6);
    EXPECT_EQ(dist.samples(), 3u);
    EXPECT_EQ(dist.sum(), 10u);
    EXPECT_DOUBLE_EQ(dist.mean(), 10.0 / 3.0);
    EXPECT_EQ(dist.count(2), 2u);
    EXPECT_EQ(dist.count(6), 1u);
    EXPECT_EQ(dist.count(5), 0u);
    EXPECT_EQ(dist.count(100), 0u);
    EXPECT_DOUBLE_EQ(dist.fraction(2), 2.0 / 3.0);
    EXPECT_EQ(dist.maxValue(), 6u);
}

TEST(Distribution, EmptyIsSafe)
{
    Distribution dist;
    EXPECT_EQ(dist.samples(), 0u);
    EXPECT_DOUBLE_EQ(dist.mean(), 0.0);
    EXPECT_DOUBLE_EQ(dist.fraction(3), 0.0);
#ifdef NDEBUG
    // Release builds: an empty distribution has no percentiles and
    // the call returns the documented "no data" 0.
    EXPECT_EQ(dist.percentile(50.0), 0u);
#else
    // Debug builds assert: callers must guard with samples() when 0
    // is a legal sample value.
    EXPECT_DEATH(dist.percentile(50.0), "empty distribution");
#endif
}

TEST(Distribution, PercentileSingleValue)
{
    Distribution dist;
    dist.sample(7);
    EXPECT_EQ(dist.percentile(0.0), 7u);
    EXPECT_EQ(dist.percentile(50.0), 7u);
    EXPECT_EQ(dist.percentile(100.0), 7u);
}

TEST(Distribution, PercentileUniformRange)
{
    Distribution dist;
    for (uint64_t v = 1; v <= 100; ++v)
        dist.sample(v);
    EXPECT_EQ(dist.percentile(50.0), 50u);
    EXPECT_EQ(dist.percentile(90.0), 90u);
    EXPECT_EQ(dist.percentile(99.0), 99u);
    EXPECT_EQ(dist.percentile(100.0), 100u);
    EXPECT_EQ(dist.percentile(1.0), 1u);
}

TEST(Distribution, PercentileClampsOutOfRangeP)
{
    Distribution dist;
    dist.sample(3);
    dist.sample(9);
    EXPECT_EQ(dist.percentile(-5.0), 3u);
    EXPECT_EQ(dist.percentile(250.0), 9u);
}

TEST(Distribution, PercentileSkewed)
{
    // 99 samples of 1 and one of 1000: p50/p90 stay at 1, p99+ sees
    // the tail only at the very top.
    Distribution dist;
    for (int i = 0; i < 99; ++i)
        dist.sample(1);
    dist.sample(1000);
    EXPECT_EQ(dist.percentile(50.0), 1u);
    EXPECT_EQ(dist.percentile(90.0), 1u);
    EXPECT_EQ(dist.percentile(99.0), 1u);
    EXPECT_EQ(dist.percentile(100.0), 1000u);
}

TEST(StatGroup, CountersPersistByName)
{
    StatGroup group("test");
    ++group.counter("hits");
    ++group.counter("hits");
    ++group.counter("misses");
    EXPECT_EQ(group.value("hits"), 2u);
    EXPECT_EQ(group.value("misses"), 1u);
    EXPECT_EQ(group.value("absent"), 0u);
}

TEST(StatGroup, DumpFormat)
{
    StatGroup group("l2");
    group.counter("hits") += 3;
    std::ostringstream os;
    group.dump(os);
    EXPECT_NE(os.str().find("l2.hits 3"), std::string::npos);
}

TEST(StatGroup, ResetZeroesAll)
{
    StatGroup group("g");
    group.counter("a") += 5;
    group.distribution("d").sample(2);
    group.reset();
    EXPECT_EQ(group.value("a"), 0u);
    EXPECT_EQ(group.distribution("d").samples(), 0u);
}

TEST(GeometricMean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geometricMean({}), 1.0);
    EXPECT_DOUBLE_EQ(geometricMean({4.0}), 4.0);
    EXPECT_NEAR(geometricMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_NEAR(geometricMean({0.5, 2.0}), 1.0, 1e-12);
}

} // namespace
} // namespace grp
