/** @file Unit tests for the out-of-order CPU model. */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/cpu.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

/** A canned trace source. */
class VectorTrace : public TraceSource
{
  public:
    explicit VectorTrace(std::vector<TraceOp> ops)
        : ops_(std::move(ops))
    {
    }

    bool
    next(TraceOp &op) override
    {
        if (pos_ >= ops_.size())
            return false;
        op = ops_[pos_++];
        return true;
    }

  private:
    std::vector<TraceOp> ops_;
    size_t pos_ = 0;
};

class CpuTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }

    /** Run a trace to completion; returns cycles used. */
    uint64_t
    run(std::vector<TraceOp> ops, const HintTable *hints = nullptr,
        SimConfig config = SimConfig{})
    {
        EventQueue events;
        MemorySystem mem(config, events);
        VectorTrace trace(std::move(ops));
        cpu = std::make_unique<Cpu>(config, mem, events, trace,
                                    hints);
        Tick cycle = 0;
        while (!cpu->done() && cycle < 1'000'000) {
            events.advanceTo(cycle);
            cpu->tick();
            mem.tick();
            ++cycle;
        }
        EXPECT_TRUE(cpu->done());
        return cpu->cycles();
    }

    std::unique_ptr<Cpu> cpu;
};

TEST_F(CpuTest, ComputeRetiresAtFullWidth)
{
    std::vector<TraceOp> ops(400, TraceOp::compute());
    const uint64_t cycles = run(ops);
    EXPECT_EQ(cpu->retiredInstructions(), 400u);
    // 4-wide: at least 100 cycles, with small pipeline overheads.
    EXPECT_GE(cycles, 100u);
    EXPECT_LE(cycles, 110u);
    EXPECT_GT(cpu->ipc(), 3.6);
}

TEST_F(CpuTest, IndependentLoadsOverlap)
{
    // Two loads to distinct blocks on different channels: total time
    // must be far less than two serial DRAM accesses.
    std::vector<TraceOp> serial{TraceOp::load(0x10000, 0)};
    const uint64_t one = run(serial);
    std::vector<TraceOp> both{TraceOp::load(0x20000, 0),
                              TraceOp::load(0x20040, 1)};
    const uint64_t two = run(both);
    EXPECT_LT(two, 2 * one - 20);
}

TEST_F(CpuTest, DependentChainIsBoundedByRob)
{
    // More loads than ROB entries to the same cold blocks still
    // complete (no deadlock) and retire in order.
    std::vector<TraceOp> ops;
    for (unsigned i = 0; i < 200; ++i)
        ops.push_back(TraceOp::load(0x100000 + 8 * i, 0));
    run(ops);
    EXPECT_EQ(cpu->retiredInstructions(), 200u);
}

TEST_F(CpuTest, StoresDoNotBlockRetirement)
{
    std::vector<TraceOp> ops;
    for (unsigned i = 0; i < 64; ++i)
        ops.push_back(TraceOp::store(0x200000 + 64 * i, 0));
    ops.push_back(TraceOp::compute());
    const uint64_t cycles = run(ops);
    // Stores complete from the store buffer; with 8 MSHRs limiting
    // issue, this still finishes quickly relative to 64 serial
    // misses (~150 cycles each).
    EXPECT_LT(cycles, 64 * 150u);
    EXPECT_EQ(cpu->retiredInstructions(), 65u);
}

TEST_F(CpuTest, IndirectOpsAreElidedWithoutHints)
{
    std::vector<TraceOp> ops{
        TraceOp::indirect(0x1000, 8, 0x2000, 0),
        TraceOp::compute(),
    };
    run(ops, nullptr);
    // The unhinted binary contains no indirect prefetch instruction.
    EXPECT_EQ(cpu->retiredInstructions(), 1u);
    EXPECT_EQ(cpu->stats().value("indirectPrefetchOps"), 0u);
}

TEST_F(CpuTest, IndirectOpsExecuteWithHints)
{
    SimConfig config;
    config.scheme = PrefetchScheme::GrpVar;
    HintTable hints;
    std::vector<TraceOp> ops{
        TraceOp::indirect(0x1000, 8, 0x2000, 0),
        TraceOp::compute(),
    };
    run(ops, &hints, config);
    EXPECT_EQ(cpu->retiredInstructions(), 2u);
    EXPECT_EQ(cpu->stats().value("indirectPrefetchOps"), 1u);
}

TEST_F(CpuTest, LoadAndStoreCountsTracked)
{
    std::vector<TraceOp> ops{
        TraceOp::load(0x1000, 0),
        TraceOp::store(0x2000, 1),
        TraceOp::compute(),
        TraceOp::load(0x1008, 2),
    };
    run(ops);
    EXPECT_EQ(cpu->stats().value("loads"), 2u);
    EXPECT_EQ(cpu->stats().value("stores"), 1u);
}

TEST_F(CpuTest, EmptyTraceFinishesImmediately)
{
    run({});
    EXPECT_EQ(cpu->retiredInstructions(), 0u);
    EXPECT_TRUE(cpu->done());
}

TEST_F(CpuTest, MemStallsAreCounted)
{
    // 20 distinct cold blocks, 8 MSHRs: some issues must stall.
    std::vector<TraceOp> ops;
    for (unsigned i = 0; i < 20; ++i)
        ops.push_back(TraceOp::load(0x400000 + 64 * i, 0));
    run(ops);
    EXPECT_GT(cpu->stats().value("memStalls"), 0u);
}

} // namespace
} // namespace grp
