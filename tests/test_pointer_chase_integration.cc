/**
 * @file
 * Integration test of the full pointer-chase path (§3.3.1): a
 * recursive-pointer-hinted miss arms the MSHR counter, the fill is
 * scanned, discovered pointers are prefetched with decremented
 * depth, and the chase continues level by level until the counter
 * reaches zero.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/engine_factory.hh"
#include "mem/memory_system.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

class PointerChaseIntegration : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setQuiet(true);
        // Build a long list of 64-byte nodes spread far apart so no
        // two share a block or region.
        Addr prev = 0;
        for (int i = 0; i < 12; ++i) {
            const Addr node = fmem.heapAlloc(64, kRegionBytes);
            nodes.push_back(node);
            if (prev)
                fmem.write64(prev, node);
            prev = node;
        }
        fmem.write64(prev, 0);
    }

    /** Run a GRP system and count how many list nodes were
     *  prefetched after one hinted miss on nodes[0]. */
    unsigned
    chasedNodes(unsigned recursive_depth, uint8_t flags)
    {
        SimConfig config;
        config.scheme = PrefetchScheme::GrpVar;
        config.region.recursiveDepth = recursive_depth;
        EventQueue events;
        MemorySystem mem(config, events);
        bool done = false;
        mem.setLoadCallback([&done](uint64_t) { done = true; });
        auto engine = makePrefetchEngine(config, fmem, mem);

        LoadHints hints;
        hints.flags = flags;
        EXPECT_TRUE(mem.load(nodes[0], 0, hints, 1));
        for (Tick t = 0; t < 50'000; ++t) {
            events.advanceTo(t);
            mem.tick();
        }
        EXPECT_TRUE(done);

        unsigned present = 0;
        for (size_t i = 1; i < nodes.size(); ++i)
            present += mem.l2().contains(nodes[i]);
        return present;
    }

    FunctionalMemory fmem;
    std::vector<Addr> nodes;
};

TEST_F(PointerChaseIntegration, UnhintedMissChasesNothing)
{
    EXPECT_EQ(chasedNodes(6, 0), 0u);
}

TEST_F(PointerChaseIntegration, PointerHintChasesOneLevel)
{
    EXPECT_EQ(chasedNodes(6, kHintPointer), 1u);
}

TEST_F(PointerChaseIntegration, RecursiveHintChasesSixLevels)
{
    EXPECT_EQ(chasedNodes(6, kHintPointer | kHintRecursive), 6u);
}

TEST_F(PointerChaseIntegration, McfDepthOverrideChasesThree)
{
    // The paper's mcf footnote: recursion terminated after 3 levels.
    EXPECT_EQ(chasedNodes(3, kHintPointer | kHintRecursive), 3u);
}

TEST_F(PointerChaseIntegration, DepthSevenIsTheCounterMaximum)
{
    EXPECT_EQ(chasedNodes(7, kHintPointer | kHintRecursive), 7u);
}

} // namespace
} // namespace grp
