/** @file Unit tests for the IR program builder. */

#include <gtest/gtest.h>

#include "compiler/builder.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

class BuilderTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    FunctionalMemory mem;
};

TEST_F(BuilderTest, ArraysAllocateAtRealAddresses)
{
    ProgramBuilder b(mem);
    const ArrayId s = b.array("s", 8, {100});
    ArrayOpts heap;
    heap.heap = true;
    const ArrayId h = b.array("h", 4, {100}, heap);
    Program prog = b.build();
    EXPECT_LT(prog.arrays[s].base, FunctionalMemory::kHeapBase);
    EXPECT_GE(prog.arrays[h].base, FunctionalMemory::kHeapBase);
    EXPECT_EQ(prog.arrays[s].base % kBlockBytes, 0u);
    EXPECT_TRUE(prog.arrays[h].isHeap);
}

TEST_F(BuilderTest, RefIdsAreUniqueAndDense)
{
    ProgramBuilder b(mem);
    const ArrayId a = b.array("a", 8, {16});
    const VarId i = b.forLoop(0, 4);
    const RefId r0 = b.arrayRef(a, {Subscript::affine(Affine::var(i))});
    const RefId r1 = b.ptrRef(b.ptr("p"), 0);
    const RefId r2 =
        b.arrayRef(a, {Subscript::affine(Affine::var(i))}, true);
    b.end();
    Program prog = b.build();
    EXPECT_EQ(r0, 0u);
    EXPECT_EQ(r1, 1u);
    EXPECT_EQ(r2, 2u);
    EXPECT_EQ(prog.nextRefId, 3u);
}

TEST_F(BuilderTest, IndirectSubscriptGetsOwnRefId)
{
    ProgramBuilder b(mem);
    const ArrayId idx = b.array("b", 4, {16});
    const ArrayId a = b.array("a", 8, {256});
    const VarId i = b.forLoop(0, 4);
    const RefId target =
        b.arrayRef(a, {Subscript::indirect(idx, Affine::var(i))});
    b.end();
    Program prog = b.build();
    const Stmt &stmt = prog.top[0].loop.body[0].stmt;
    EXPECT_NE(stmt.subs[0].indexRefId, kInvalidRefId);
    EXPECT_NE(stmt.subs[0].indexRefId, target);
    EXPECT_EQ(prog.nextRefId, 2u);
}

TEST_F(BuilderTest, LoopNestingStructure)
{
    ProgramBuilder b(mem);
    const ArrayId a = b.array("a", 8, {64});
    const VarId i = b.forLoop(0, 4);
    b.compute(1);
    const VarId j = b.forLoop(0, 8);
    b.arrayRef(a, {Subscript::affine(Affine::var(j))});
    b.end();
    b.compute(1);
    b.end();
    (void)i;
    Program prog = b.build();
    ASSERT_EQ(prog.top.size(), 1u);
    const Loop &outer = prog.top[0].loop;
    ASSERT_EQ(outer.body.size(), 3u);
    EXPECT_EQ(outer.body[0].kind, Node::Kind::Statement);
    EXPECT_EQ(outer.body[1].kind, Node::Kind::NestedLoop);
    EXPECT_EQ(outer.body[1].loop.body.size(), 1u);
}

TEST_F(BuilderTest, TripCountComputation)
{
    ProgramBuilder b(mem);
    b.forLoop(0, 10);
    b.end();
    b.forLoop(1, 10, 3);
    b.end();
    b.forLoop(10, 0, -2);
    b.end();
    b.forLoop(5, 5);
    b.end();
    b.forLoop(0, 100, 1, /*bound_known=*/false);
    b.end();
    Program prog = b.build();
    EXPECT_EQ(prog.top[0].loop.tripCount(), 10u);
    EXPECT_EQ(prog.top[1].loop.tripCount(), 3u);
    EXPECT_EQ(prog.top[2].loop.tripCount(), 5u);
    EXPECT_EQ(prog.top[3].loop.tripCount(), 0u);
    EXPECT_EQ(prog.top[4].loop.tripCount(), 0u); // Unknown.
}

TEST_F(BuilderTest, DimStrides)
{
    ProgramBuilder b(mem);
    const ArrayId c_arr = b.array("c", 8, {4, 8, 16});
    ArrayOpts fortran;
    fortran.columnMajor = true;
    const ArrayId f_arr = b.array("f", 8, {4, 8, 16}, fortran);
    Program prog = b.build();
    // Row-major: last dimension contiguous.
    EXPECT_EQ(prog.arrays[c_arr].dimStrideElems(2), 1u);
    EXPECT_EQ(prog.arrays[c_arr].dimStrideElems(1), 16u);
    EXPECT_EQ(prog.arrays[c_arr].dimStrideElems(0), 128u);
    // Column-major: first dimension contiguous.
    EXPECT_EQ(prog.arrays[f_arr].dimStrideElems(0), 1u);
    EXPECT_EQ(prog.arrays[f_arr].dimStrideElems(1), 4u);
    EXPECT_EQ(prog.arrays[f_arr].dimStrideElems(2), 32u);
}

TEST_F(BuilderTest, SubscriptCountMismatchIsFatal)
{
    ProgramBuilder b(mem);
    const ArrayId a = b.array("a", 8, {4, 4});
    b.forLoop(0, 4);
    EXPECT_THROW(b.arrayRef(a, {Subscript::affine(Affine::of(0))}),
                 std::runtime_error);
}

TEST_F(BuilderTest, UnbalancedLoopsAreFatal)
{
    ProgramBuilder b(mem);
    b.forLoop(0, 4);
    EXPECT_THROW(b.build(), std::runtime_error);
}

TEST_F(BuilderTest, EndWithoutLoopIsFatal)
{
    ProgramBuilder b(mem);
    EXPECT_THROW(b.end(), std::runtime_error);
}

TEST_F(BuilderTest, PtrInitialCanBeSetLate)
{
    ProgramBuilder b(mem);
    const PtrId p = b.ptr("p");
    const Addr node = mem.heapAlloc(64);
    b.setPtrInitial(p, node);
    Program prog = b.build();
    EXPECT_EQ(prog.ptrs[p].initial, node);
}

} // namespace
} // namespace grp
