/** @file Unit tests for the hint encoding and hint table. */

#include <gtest/gtest.h>

#include "core/hint_table.hh"
#include "core/hints.hh"

namespace grp
{
namespace
{

TEST(LoadHints, FlagPredicates)
{
    LoadHints hints;
    EXPECT_FALSE(hints.any());
    hints.flags = kHintSpatial;
    EXPECT_TRUE(hints.spatial());
    EXPECT_FALSE(hints.pointer());
    hints.flags |= kHintPointer | kHintRecursive;
    EXPECT_TRUE(hints.pointer());
    EXPECT_TRUE(hints.recursive());
    EXPECT_TRUE(hints.any());
}

TEST(LoadHints, FixedRegionByDefault)
{
    LoadHints hints;
    EXPECT_EQ(hints.sizeCoeff, kFixedRegionCoeff);
    EXPECT_EQ(hints.regionBlocks(64), 64u);
}

TEST(LoadHints, VariableRegionFromBoundAndCoeff)
{
    LoadHints hints;
    hints.flags = kHintSpatial | kHintSizeValid;
    hints.sizeCoeff = 3; // 8-byte elements.
    hints.loopBound = 16;
    // 16 << 3 = 128 bytes = 2 blocks.
    EXPECT_EQ(hints.regionBlocks(64), 2u);
    hints.loopBound = 64; // 512 bytes = 8 blocks.
    EXPECT_EQ(hints.regionBlocks(64), 8u);
    hints.loopBound = 48; // 384 B = 6 blocks -> next pow2 = 8.
    EXPECT_EQ(hints.regionBlocks(64), 8u);
}

TEST(LoadHints, VariableRegionClampsToFixed)
{
    LoadHints hints;
    hints.flags = kHintSizeValid;
    hints.sizeCoeff = 3;
    hints.loopBound = 1'000'000;
    EXPECT_EQ(hints.regionBlocks(64), 64u);
}

TEST(LoadHints, VariableRegionFloorsAtTwoBlocks)
{
    LoadHints hints;
    hints.flags = kHintSizeValid;
    hints.sizeCoeff = 0;
    hints.loopBound = 3; // 3 bytes.
    EXPECT_EQ(hints.regionBlocks(64), 2u);
}

TEST(LoadHints, SizeWithoutBoundIsFixed)
{
    LoadHints hints;
    hints.flags = kHintSizeValid;
    hints.sizeCoeff = 3;
    hints.loopBound = 0;
    EXPECT_EQ(hints.regionBlocks(64), 64u);
}

TEST(LoadHints, PointerDepthSelection)
{
    LoadHints hints;
    EXPECT_EQ(hints.pointerDepth(6), 0u);
    hints.flags = kHintPointer;
    EXPECT_EQ(hints.pointerDepth(6), 1u);
    hints.flags = kHintPointer | kHintRecursive;
    EXPECT_EQ(hints.pointerDepth(6), 6u);
    EXPECT_EQ(hints.pointerDepth(3), 3u); // The mcf override.
}

TEST(LoadHints, Describe)
{
    LoadHints hints;
    EXPECT_EQ(hints.describe(), "none");
    hints.flags = kHintSpatial | kHintPointer;
    EXPECT_EQ(hints.describe(), "spatial|pointer");
}

TEST(HintTable, SetAndGet)
{
    HintTable table;
    LoadHints hints;
    hints.flags = kHintSpatial;
    table.set(5, hints);
    EXPECT_TRUE(table.get(5).spatial());
    EXPECT_FALSE(table.get(4).any());
    EXPECT_FALSE(table.get(100).any()); // Out of range is empty.
    EXPECT_EQ(table.size(), 6u);
}

TEST(HintTable, AddFlagsMerges)
{
    HintTable table;
    table.addFlags(2, kHintSpatial);
    table.addFlags(2, kHintPointer);
    EXPECT_TRUE(table.get(2).spatial());
    EXPECT_TRUE(table.get(2).pointer());
}

TEST(HintTable, CountWith)
{
    HintTable table;
    table.addFlags(0, kHintSpatial);
    table.addFlags(1, kHintSpatial | kHintPointer);
    table.addFlags(2, kHintPointer);
    EXPECT_EQ(table.countWith(kHintSpatial), 2u);
    EXPECT_EQ(table.countWith(kHintPointer), 2u);
    EXPECT_EQ(table.countWith(kHintRecursive), 0u);
}

TEST(HintTable, ClearEmpties)
{
    HintTable table;
    table.addFlags(3, kHintSpatial);
    table.clear();
    EXPECT_EQ(table.size(), 0u);
    EXPECT_FALSE(table.get(3).spatial());
}

} // namespace
} // namespace grp
