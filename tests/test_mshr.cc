/** @file Unit tests for the MSHR file. */

#include <gtest/gtest.h>

#include "mem/mshr.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

class MshrTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    MshrFile file{4, 2, "t"};
};

TEST_F(MshrTest, AllocateAndFindByBlock)
{
    Mshr &mshr = file.allocate(0x1234, false, {}, 0, 10);
    EXPECT_EQ(mshr.blockAddr, blockAlign(0x1234));
    EXPECT_EQ(file.find(0x1200), &mshr); // Same block.
    EXPECT_EQ(file.find(0x2000), nullptr);
    EXPECT_EQ(file.inFlight(), 1u);
    EXPECT_EQ(file.demandInFlight(), 1u);
}

TEST_F(MshrTest, PrefetchAllocationIsNotDemand)
{
    file.allocate(0x1000, true, {}, 3, 0);
    EXPECT_EQ(file.inFlight(), 1u);
    EXPECT_EQ(file.demandInFlight(), 0u);
}

TEST_F(MshrTest, UpgradeOnDemandTarget)
{
    Mshr &mshr = file.allocate(0x1000, true, {}, 2, 0);
    EXPECT_TRUE(file.addTarget(mshr, {1, false, 5}));
    EXPECT_FALSE(mshr.isPrefetch);
    EXPECT_EQ(file.demandInFlight(), 1u);
    EXPECT_EQ(mshr.ptrDepth, 2u); // Depth survives the upgrade.
}

TEST_F(MshrTest, TargetListIsBounded)
{
    Mshr &mshr = file.allocate(0x1000, false, {}, 0, 0);
    EXPECT_TRUE(file.addTarget(mshr, {1, false, 0}));
    EXPECT_TRUE(file.addTarget(mshr, {2, true, 0}));
    EXPECT_FALSE(file.addTarget(mshr, {3, false, 0}));
    EXPECT_EQ(mshr.targets.size(), 2u);
}

TEST_F(MshrTest, FullAndDeallocate)
{
    for (int i = 0; i < 4; ++i)
        file.allocate(0x1000 + 0x40 * i, i % 2 == 0, {}, 0, 0);
    EXPECT_TRUE(file.full());
    Mshr *mshr = file.find(0x1000);
    ASSERT_NE(mshr, nullptr);
    file.deallocate(*mshr);
    EXPECT_FALSE(file.full());
    EXPECT_EQ(file.find(0x1000), nullptr);
    EXPECT_EQ(file.inFlight(), 3u);
}

TEST_F(MshrTest, DemandCountTracksDeallocation)
{
    Mshr &demand = file.allocate(0x1000, false, {}, 0, 0);
    Mshr &prefetch = file.allocate(0x2000, true, {}, 0, 0);
    EXPECT_EQ(file.demandInFlight(), 1u);
    file.deallocate(demand);
    EXPECT_EQ(file.demandInFlight(), 0u);
    file.deallocate(prefetch);
    EXPECT_EQ(file.demandInFlight(), 0u);
    EXPECT_EQ(file.inFlight(), 0u);
}

TEST_F(MshrTest, DuplicateAllocationPanics)
{
    file.allocate(0x1000, false, {}, 0, 0);
    EXPECT_THROW(file.allocate(0x1010, false, {}, 0, 0),
                 std::logic_error);
}

TEST_F(MshrTest, AllocationWhenFullPanics)
{
    for (int i = 0; i < 4; ++i)
        file.allocate(0x40ull * i, false, {}, 0, 0);
    EXPECT_THROW(file.allocate(0x4000, false, {}, 0, 0),
                 std::logic_error);
}

TEST_F(MshrTest, HintsAndDepthStored)
{
    LoadHints hints;
    hints.flags = kHintSpatial | kHintRecursive;
    Mshr &mshr = file.allocate(0x3000, false, hints, 6, 77);
    EXPECT_TRUE(mshr.hints.spatial());
    EXPECT_TRUE(mshr.hints.recursive());
    EXPECT_EQ(mshr.ptrDepth, 6u);
    EXPECT_EQ(mshr.allocated, 77u);
}

TEST_F(MshrTest, ResetClearsEverything)
{
    file.allocate(0x1000, false, {}, 0, 0);
    file.reset();
    EXPECT_EQ(file.inFlight(), 0u);
    EXPECT_EQ(file.demandInFlight(), 0u);
    EXPECT_EQ(file.find(0x1000), nullptr);
}

} // namespace
} // namespace grp
