/** @file Unit tests for induction-variable/pointer recognition. */

#include <gtest/gtest.h>

#include "compiler/induction.hh"
#include "compiler/builder.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

class InductionTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    FunctionalMemory mem;
};

TEST_F(InductionTest, RecognisesConstantPointerIncrement)
{
    // Figure 5: for (; p < s; p += c) { ...*p... }
    ProgramBuilder b(mem);
    const PtrId p = b.ptr("p", kNoId, 0x1000);
    b.forLoop(0, 100);
    b.ptrArrayRef(p, 8, Subscript::affine(Affine::of(0)));
    b.ptrUpdateConst(p, 16);
    b.end();
    Program prog = b.build();

    InductionAnalysis analysis;
    analysis.run(prog);
    EXPECT_EQ(analysis.pairCount(), 1u);
    const Loop *loop = &prog.top[0].loop;
    EXPECT_EQ(analysis.strideOf(loop, p), 16);
    LoopNest nest{loop};
    EXPECT_TRUE(analysis.isSpatialInductionPtr(nest, p));
}

TEST_F(InductionTest, LargeStridesAreNotSpatial)
{
    ProgramBuilder b(mem);
    const PtrId p = b.ptr("p", kNoId, 0x1000);
    b.forLoop(0, 100);
    b.ptrUpdateConst(p, 8192); // Jumps pages.
    b.end();
    Program prog = b.build();
    InductionAnalysis analysis;
    analysis.run(prog);
    const Loop *loop = &prog.top[0].loop;
    EXPECT_EQ(analysis.strideOf(loop, p), 8192);
    LoopNest nest{loop};
    EXPECT_FALSE(analysis.isSpatialInductionPtr(nest, p));
}

TEST_F(InductionTest, FieldWalkDisqualifiesInduction)
{
    // p += c and p = p->next in the same loop: not an induction
    // pointer.
    ProgramBuilder b(mem);
    const TypeId t = b.structType("t", 64, {{"next", 8, true, 0}});
    const PtrId p = b.ptr("p", t, 0x1000);
    b.forLoop(0, 100);
    b.ptrUpdateConst(p, 64);
    b.ptrUpdateField(p, 8);
    b.end();
    Program prog = b.build();
    InductionAnalysis analysis;
    analysis.run(prog);
    EXPECT_EQ(analysis.strideOf(&prog.top[0].loop, p), 0);
}

TEST_F(InductionTest, ArrayReloadDisqualifiesInduction)
{
    // p = buf[i] each iteration: p is not a constant induction.
    ProgramBuilder b(mem);
    const ArrayId buf = b.array("buf", 8, {64});
    const PtrId p = b.ptr("p");
    const VarId i = b.forLoop(0, 64);
    b.ptrLoadFromArray(p, buf, Subscript::affine(Affine::var(i)));
    b.ptrUpdateConst(p, 8);
    b.end();
    Program prog = b.build();
    InductionAnalysis analysis;
    analysis.run(prog);
    EXPECT_EQ(analysis.strideOf(&prog.top[0].loop, p), 0);
}

TEST_F(InductionTest, ConflictingStridesDisqualify)
{
    ProgramBuilder b(mem);
    const PtrId p = b.ptr("p", kNoId, 0x1000);
    b.forLoop(0, 100);
    b.ptrUpdateConst(p, 16);
    b.ptrUpdateConst(p, 32);
    b.end();
    Program prog = b.build();
    InductionAnalysis analysis;
    analysis.run(prog);
    EXPECT_EQ(analysis.strideOf(&prog.top[0].loop, p), 0);
}

TEST_F(InductionTest, NegativeStrideIsSpatial)
{
    ProgramBuilder b(mem);
    const PtrId p = b.ptr("p", kNoId, 0x100000);
    b.forLoop(0, 100);
    b.ptrUpdateConst(p, -8);
    b.end();
    Program prog = b.build();
    InductionAnalysis analysis;
    analysis.run(prog);
    LoopNest nest{&prog.top[0].loop};
    EXPECT_TRUE(analysis.isSpatialInductionPtr(nest, p));
}

TEST_F(InductionTest, OutsideLoopsNothingIsInduction)
{
    ProgramBuilder b(mem);
    const PtrId p = b.ptr("p", kNoId, 0x1000);
    b.ptrUpdateConst(p, 8); // Top level: not in any loop.
    Program prog = b.build();
    InductionAnalysis analysis;
    analysis.run(prog);
    EXPECT_EQ(analysis.pairCount(), 0u);
}

} // namespace
} // namespace grp
