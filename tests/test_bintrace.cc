/** @file Tests for the .grpbin binary flight-recorder container:
 *  JSONL <-> binary round-trip fidelity over every record type,
 *  checkpoint-seek query equivalence against a full scan, and the
 *  distinct truncated/unfinalized error reporting. */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "obs/bintrace.hh"
#include "obs/trace.hh"
#include "obs/trace_reader.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.is_open()) << path;
    std::ostringstream text;
    text << is.rdbuf();
    return text.str();
}

/** Run one traced simulation; returns the trace path. */
std::string
runTraced(const char *name, obs::TraceFormat format, int level,
          uint64_t checkpoint_interval = 0)
{
    setQuiet(true);
    const std::string path = tempPath(name);
    SimConfig config;
    config.scheme = PrefetchScheme::GrpVar;
    RunOptions opts;
    opts.maxInstructions = 60'000;
    opts.obs.tracePath = path;
    opts.obs.traceFormat = format;
    opts.obs.traceLevel = level;
    if (checkpoint_interval)
        obs::Tracer::instance().setCheckpointInterval(
            checkpoint_interval);
    runWorkload("mcf", config, opts);
    return path;
}

/** Hand-drive a Tracer pair (JSONL + binary) over the same records
 *  so every event type and field combination is covered regardless
 *  of what a simulation happens to emit. */
struct RecordedPair
{
    std::string jsonlPath;
    std::string binPath;
};

RecordedPair
writeAllRecordTypes(const char *stem)
{
    RecordedPair out;
    out.jsonlPath = tempPath((std::string(stem) + ".jsonl").c_str());
    out.binPath = tempPath((std::string(stem) + ".grpbin").c_str());

    // Every event type once, plus field-presence variations:
    // addresses that jump backwards (zigzag deltas), the None hint
    // (omitted field), carry/warm flags, large extras and sites.
    const std::vector<obs::TraceRecord> records = {
        {obs::TraceEvent::HintTrigger, 0x40000000,
         obs::HintClass::Spatial, -1, -1, false, 3},
        {obs::TraceEvent::Enqueue, 0x40000000,
         obs::HintClass::Spatial, -1, 63, false, 3},
        {obs::TraceEvent::Drop, 0x3f000000, obs::HintClass::Pointer,
         -1, 8, false, kInvalidRefId},
        {obs::TraceEvent::Issue, 0x40000040,
         obs::HintClass::Recursive, 2, 1, false, 7},
        {obs::TraceEvent::Stall, 0, obs::HintClass::None, -1, -1,
         false, kInvalidRefId},
        {obs::TraceEvent::Filtered, 0x40000080,
         obs::HintClass::Indirect, -1, -1, false, 12345},
        {obs::TraceEvent::Fill, 0x40000040, obs::HintClass::Stride,
         1, -1, true, kInvalidRefId},
        {obs::TraceEvent::FirstUse, 0x40000040,
         obs::HintClass::None, -1, 900, false, 7},
        {obs::TraceEvent::EvictedUnused, 0x10, obs::HintClass::Spatial,
         -1, -1, false, kInvalidRefId},
        {obs::TraceEvent::EvictVictim, 0xdeadbeef00,
         obs::HintClass::Pointer, -1, -1, false, 9},
        {obs::TraceEvent::PollutionMiss, 0xdeadbeef00,
         obs::HintClass::Pointer, -1, -1, false, 9},
        {obs::TraceEvent::CtrlTransition, 0, obs::HintClass::Spatial,
         2, 1, false, kInvalidRefId},
    };
    // Ticks exercise dt = 0 runs and large jumps.
    const uint64_t ticks[] = {0,   0,   5,    5,    5,    1000,
                              1000, 1000, 99999, 99999, 100000, 1u << 20};

    for (const bool binary : {false, true}) {
        obs::Tracer &tracer = obs::Tracer::instance();
        EXPECT_TRUE(tracer.open(binary ? out.binPath : out.jsonlPath,
                                binary ? obs::TraceFormat::Binary
                                       : obs::TraceFormat::Jsonl))
            << "open failed";
        tracer.setLevel(3);
        EventQueue clock;
        tracer.setClock(&clock);
        tracer.setWarmup(true);
        for (size_t i = 0; i < records.size(); ++i) {
            clock.advanceTo(ticks[i]);
            if (i == records.size() / 2)
                tracer.setWarmup(false);
            tracer.record(records[i]);
        }
        tracer.setClock(nullptr);
        tracer.close();
    }
    return out;
}

TEST(Bintrace, VarintRoundTrip)
{
    for (uint64_t value :
         {0ull, 1ull, 127ull, 128ull, 300ull, (1ull << 32),
          ~0ull, (1ull << 63)}) {
        uint8_t buf[10];
        const size_t n = obs::bintrace::putVarint(buf, value);
        ASSERT_LE(n, 10u);
        const uint8_t *p = buf;
        uint64_t back = 0;
        ASSERT_TRUE(obs::bintrace::readVarint(p, buf + n, back));
        EXPECT_EQ(back, value);
        EXPECT_EQ(p, buf + n);
    }
}

TEST(Bintrace, ZigzagRoundTrip)
{
    const uint64_t deltas[] = {0,          1,         ~0ull /* -1 */,
                               64,         (uint64_t)-64,
                               1ull << 40, (uint64_t)-(1ll << 40)};
    for (uint64_t delta : deltas) {
        EXPECT_EQ(obs::bintrace::unzigzag(obs::bintrace::zigzag(delta)),
                  delta);
    }
    // Small magnitudes stay small on the wire.
    EXPECT_LE(obs::bintrace::zigzag((uint64_t)-2), 4u);
}

TEST(Bintrace, AllRecordTypesFieldEqual)
{
    const RecordedPair pair = writeAllRecordTypes("grp_bt_all");
    const obs::TraceParseResult jsonl =
        obs::readTraceFile(pair.jsonlPath);
    const obs::TraceParseResult bin = obs::readTraceFile(pair.binPath);

    EXPECT_FALSE(jsonl.binary);
    EXPECT_TRUE(bin.binary);
    EXPECT_FALSE(bin.truncated);
    EXPECT_TRUE(jsonl.errors.empty());
    EXPECT_TRUE(bin.errors.empty());
    ASSERT_EQ(jsonl.lines.size(), bin.lines.size());
    ASSERT_EQ(bin.lines.size(), 12u); // One per event type.

    for (size_t i = 0; i < bin.lines.size(); ++i) {
        const obs::TraceLine &a = jsonl.lines[i];
        const obs::TraceLine &b = bin.lines[i];
        EXPECT_EQ(a.t, b.t) << i;
        EXPECT_EQ(a.event, b.event) << i;
        EXPECT_EQ(a.addr, b.addr) << i;
        EXPECT_EQ(a.hint, b.hint) << i;
        EXPECT_EQ(a.channel, b.channel) << i;
        EXPECT_EQ(a.extra, b.extra) << i;
        EXPECT_EQ(a.site, b.site) << i;
        EXPECT_EQ(a.warm, b.warm) << i;
        EXPECT_EQ(a.carry, b.carry) << i;
    }
}

TEST(Bintrace, ConversionIsByteIdentical)
{
    const RecordedPair pair = writeAllRecordTypes("grp_bt_bytes");
    const obs::TraceParseResult bin = obs::readTraceFile(pair.binPath);
    std::string converted;
    for (const obs::TraceLine &line : bin.lines)
        converted += obs::jsonlLine(line);
    EXPECT_EQ(converted, slurp(pair.jsonlPath));
}

TEST(Bintrace, SimulationRoundTripByteIdentical)
{
    // The real emitters, not hand-built records: a level-2 grp-var
    // run in both formats must convert to the same bytes.
    const std::string jsonl =
        runTraced("grp_bt_sim.jsonl", obs::TraceFormat::Auto, 2);
    const std::string bin =
        runTraced("grp_bt_sim.grpbin", obs::TraceFormat::Auto, 2);
    const obs::TraceParseResult parsed = obs::readTraceFile(bin);
    EXPECT_TRUE(parsed.binary);
    EXPECT_TRUE(parsed.errors.empty());
    ASSERT_FALSE(parsed.lines.empty());
    std::string converted;
    for (const obs::TraceLine &line : parsed.lines)
        converted += obs::jsonlLine(line);
    EXPECT_EQ(converted, slurp(jsonl));
}

TEST(Bintrace, AnalyzeEquivalentAcrossFormats)
{
    const std::string jsonl =
        runTraced("grp_bt_an.jsonl", obs::TraceFormat::Auto, 2);
    const std::string bin =
        runTraced("grp_bt_an.grpbin", obs::TraceFormat::Auto, 2);
    const obs::TraceAnalysis a =
        obs::analyzeTrace(obs::readTraceFile(jsonl).lines);
    const obs::TraceAnalysis b =
        obs::analyzeTrace(obs::readTraceFile(bin).lines);
    EXPECT_EQ(a.records, b.records);
    EXPECT_EQ(a.warmupRecords, b.warmupRecords);
    EXPECT_EQ(a.violations.size(), b.violations.size());
    EXPECT_TRUE(b.violations.empty());
    ASSERT_EQ(a.byClass.size(), b.byClass.size());
    for (const auto &[hint, funnel] : a.byClass) {
        const auto it = b.byClass.find(hint);
        ASSERT_NE(it, b.byClass.end());
        EXPECT_EQ(funnel.fills, it->second.fills);
        EXPECT_EQ(funnel.useful, it->second.useful);
        EXPECT_EQ(funnel.issued, it->second.issued);
    }
}

TEST(Bintrace, QuerySeekMatchesFullScan)
{
    // A small checkpoint interval guarantees several checkpoints
    // even in a short run.
    const std::string bin = runTraced(
        "grp_bt_seek.grpbin", obs::TraceFormat::Auto, 2, 256);
    obs::Tracer::instance().setCheckpointInterval(8192); // Restore.
    const std::string data = slurp(bin);

    obs::bintrace::Container container;
    ASSERT_TRUE(
        obs::bintrace::parseContainer(data, container, nullptr));
    ASSERT_TRUE(container.finalized);
    ASSERT_GT(container.checkpoints.size(), 1u);

    // Query the second half of the tick range, every event type.
    const obs::TraceParseResult all = obs::readTraceFile(bin);
    ASSERT_FALSE(all.lines.empty());
    obs::bintrace::QueryFilter filter;
    filter.fromTick = all.lines[all.lines.size() / 2].t;

    const obs::bintrace::QueryResult indexed =
        obs::bintrace::query(data, filter, true);
    const obs::bintrace::QueryResult scanned =
        obs::bintrace::query(data, filter, false);

    EXPECT_TRUE(indexed.seeked);
    EXPECT_FALSE(scanned.seeked);
    EXPECT_LT(indexed.recordsScanned, scanned.recordsScanned);
    ASSERT_EQ(indexed.lines.size(), scanned.lines.size());
    for (size_t i = 0; i < indexed.lines.size(); ++i) {
        EXPECT_EQ(obs::jsonlLine(indexed.lines[i]),
                  obs::jsonlLine(scanned.lines[i]))
            << i;
    }
}

TEST(Bintrace, QueryFiltersSiteAndEvent)
{
    const std::string bin =
        runTraced("grp_bt_filter.grpbin", obs::TraceFormat::Auto, 2);
    const std::string data = slurp(bin);

    obs::bintrace::QueryFilter filter;
    filter.event = obs::TraceEvent::Fill;
    const obs::bintrace::QueryResult fills =
        obs::bintrace::query(data, filter, true);
    ASSERT_FALSE(fills.lines.empty());
    for (const obs::TraceLine &line : fills.lines)
        EXPECT_EQ(line.event, obs::TraceEvent::Fill);

    // Cross-check the count against a full parse.
    const obs::TraceParseResult all = obs::readTraceFile(bin);
    size_t expected = 0;
    for (const obs::TraceLine &line : all.lines)
        expected += line.event == obs::TraceEvent::Fill;
    EXPECT_EQ(fills.lines.size(), expected);
}

TEST(Bintrace, TruncatedFileReportsDistinctError)
{
    const std::string bin =
        runTraced("grp_bt_trunc.grpbin", obs::TraceFormat::Auto, 1);
    const std::string data = slurp(bin);
    ASSERT_GT(data.size(), 400u);

    // Chop the trailer + some records off: the reader must flag
    // truncation distinctly while still scanning the prefix.
    const std::string damaged = data.substr(0, data.size() - 200);
    const obs::TraceParseResult parsed = obs::readTraceData(damaged);
    EXPECT_TRUE(parsed.binary);
    EXPECT_TRUE(parsed.truncated);
    EXPECT_FALSE(parsed.lines.empty());
    ASSERT_FALSE(parsed.errors.empty());
    EXPECT_NE(parsed.errors.back().find("truncated or unfinalized"),
              std::string::npos);

    // The intact file parses clean.
    const obs::TraceParseResult intact = obs::readTraceData(data);
    EXPECT_FALSE(intact.truncated);
    EXPECT_TRUE(intact.errors.empty());

    // A truncated prefix holds a prefix of the intact lines.
    ASSERT_LT(parsed.lines.size(), intact.lines.size());
    for (size_t i = 0; i < parsed.lines.size(); ++i) {
        EXPECT_EQ(obs::jsonlLine(parsed.lines[i]),
                  obs::jsonlLine(intact.lines[i]))
            << i;
    }
}

TEST(Bintrace, StdoutSinkProducesFinalizedContainer)
{
    // "-" streams to stdout; redirect fd 1 to a file and check the
    // container still carries its finalize footer (piped consumers
    // must see a complete document).
    const std::string path = tempPath("grp_bt_stdout.grpbin");
    std::fflush(stdout);
    const int saved = dup(STDOUT_FILENO);
    ASSERT_GE(saved, 0);
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    ASSERT_GE(fd, 0);
    ASSERT_GE(dup2(fd, STDOUT_FILENO), 0);
    ::close(fd);

    obs::Tracer &tracer = obs::Tracer::instance();
    const bool opened = tracer.open("-", obs::TraceFormat::Binary);
    if (opened) {
        tracer.setLevel(1);
        tracer.record({obs::TraceEvent::Issue, 0x1000,
                       obs::HintClass::Spatial, 0, -1, false, 1});
        tracer.record({obs::TraceEvent::Fill, 0x1000,
                       obs::HintClass::Spatial, -1, -1, false, 1});
        tracer.close();
    }
    std::fflush(stdout);
    dup2(saved, STDOUT_FILENO);
    ::close(saved);
    ASSERT_TRUE(opened);

    const obs::TraceParseResult parsed = obs::readTraceFile(path);
    EXPECT_TRUE(parsed.binary);
    EXPECT_FALSE(parsed.truncated);
    ASSERT_EQ(parsed.lines.size(), 2u);
    EXPECT_EQ(parsed.lines[1].event, obs::TraceEvent::Fill);
}

TEST(Bintrace, CrashSafetyPublishesOnlyOnClose)
{
    // While the sink is open, only "<path>.tmp" exists; close()
    // finalizes and renames. A reader therefore never sees a partial
    // file at the published path.
    const std::string path = tempPath("grp_bt_crash.grpbin");
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());

    obs::Tracer &tracer = obs::Tracer::instance();
    ASSERT_TRUE(tracer.open(path, obs::TraceFormat::Binary));
    tracer.setLevel(1);
    for (uint32_t i = 0; i < 100; ++i) {
        tracer.record({obs::TraceEvent::Issue, 0x1000 + 64ull * i,
                       obs::HintClass::Spatial, 0, -1, false, 1});
    }
    EXPECT_FALSE(std::ifstream(path).is_open())
        << "trace published before finalize";
    EXPECT_TRUE(std::ifstream(path + ".tmp").is_open())
        << "no .tmp while the sink is open";
    tracer.close();
    EXPECT_TRUE(std::ifstream(path).is_open());
    EXPECT_FALSE(std::ifstream(path + ".tmp").is_open());

    const obs::TraceParseResult parsed = obs::readTraceFile(path);
    EXPECT_FALSE(parsed.truncated);
    EXPECT_EQ(parsed.lines.size(), 100u);
}

TEST(Bintrace, FormatResolution)
{
    using obs::TraceFormat;
    EXPECT_EQ(obs::resolveTraceFormat("x.grpbin", TraceFormat::Auto),
              TraceFormat::Binary);
    EXPECT_EQ(obs::resolveTraceFormat("x.jsonl", TraceFormat::Auto),
              TraceFormat::Jsonl);
    EXPECT_EQ(obs::resolveTraceFormat("-", TraceFormat::Auto),
              TraceFormat::Jsonl);
    EXPECT_EQ(obs::resolveTraceFormat("x.jsonl", TraceFormat::Binary),
              TraceFormat::Binary);
    EXPECT_EQ(obs::resolveTraceFormat("x.grpbin", TraceFormat::Jsonl),
              TraceFormat::Jsonl);
}

TEST(Bintrace, BinarySmallerThanJsonl)
{
    const std::string jsonl =
        runTraced("grp_bt_size.jsonl", obs::TraceFormat::Auto, 2);
    const std::string bin =
        runTraced("grp_bt_size.grpbin", obs::TraceFormat::Auto, 2);
    const size_t jsonl_size = slurp(jsonl).size();
    const size_t bin_size = slurp(bin).size();
    ASSERT_GT(jsonl_size, 0u);
    ASSERT_GT(bin_size, 0u);
    // The tentpole claim: ten-fold smaller on real traces.
    EXPECT_GE(jsonl_size, 10u * bin_size)
        << jsonl_size << " vs " << bin_size;
}

} // namespace
} // namespace grp
