/**
 * @file
 * Parameterized property suites: invariants swept over workloads,
 * window sizes, hint encodings and address ranges.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/hints.hh"
#include "harness/suite.hh"
#include "mem/dram.hh"
#include "prefetch/region_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace grp
{
namespace
{

// ---------------------------------------------------------------
// Per-workload system invariants.
// ---------------------------------------------------------------

class WorkloadInvariants
    : public ::testing::TestWithParam<std::string>
{
  protected:
    void SetUp() override
    {
        setQuiet(true);
        opts.maxInstructions = 40'000;
        opts.warmupInstructions = 10'000;
    }

    RunOptions opts;
};

TEST_P(WorkloadInvariants, PerfectL2DominatesBaseline)
{
    const RunResult base =
        runScheme(GetParam(), PrefetchScheme::None, opts);
    const RunResult perfect =
        runPerfect(GetParam(), Perfection::PerfectL2, opts);
    EXPECT_GE(perfect.ipc, base.ipc * 0.99);
    EXPECT_LE(perfect.ipc, 4.0);
}

TEST_P(WorkloadInvariants, AccuracyAndCoverageAreSane)
{
    const RunResult base =
        runScheme(GetParam(), PrefetchScheme::None, opts);
    for (PrefetchScheme scheme :
         {PrefetchScheme::Stride, PrefetchScheme::Srp,
          PrefetchScheme::GrpVar}) {
        const RunResult run = runScheme(GetParam(), scheme, opts);
        EXPECT_GE(run.accuracy(), 0.0) << toString(scheme);
        EXPECT_LE(run.accuracy(), 1.0) << toString(scheme);
        EXPECT_LE(run.coveragePct(base), 100.0) << toString(scheme);
        EXPECT_GT(run.ipc, 0.0) << toString(scheme);
    }
}

TEST_P(WorkloadInvariants, GrpTrafficBoundedBySrp)
{
    const RunResult srp =
        runScheme(GetParam(), PrefetchScheme::Srp, opts);
    const RunResult grp =
        runScheme(GetParam(), PrefetchScheme::GrpVar, opts);
    // GRP is SRP minus unhinted prefetches (plus small pointer /
    // indirect additions): it must never need materially more
    // bandwidth. The absolute slack absorbs a handful of blocks of
    // timing noise on nearly-traffic-free short windows.
    EXPECT_LE(grp.trafficBytes, srp.trafficBytes +
                                    srp.trafficBytes / 5 +
                                    64 * kBlockBytes)
        << GetParam();
}

TEST_P(WorkloadInvariants, SchemesRetireTheSameWindow)
{
    const RunResult base =
        runScheme(GetParam(), PrefetchScheme::None, opts);
    const RunResult grp =
        runScheme(GetParam(), PrefetchScheme::GrpVar, opts);
    const int64_t delta = static_cast<int64_t>(base.instructions) -
                          static_cast<int64_t>(grp.instructions);
    EXPECT_LE(delta < 0 ? -delta : delta, 8) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Suite, WorkloadInvariants,
    ::testing::ValuesIn(workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

// ---------------------------------------------------------------
// Region queue window properties.
// ---------------------------------------------------------------

class RegionWindowProperty : public ::testing::TestWithParam<unsigned>
{
  protected:
    void SetUp() override { setQuiet(true); }
};

TEST_P(RegionWindowProperty, CandidatesStayInsideAlignedWindow)
{
    const unsigned window = GetParam();
    RegionQueue queue(32, true, false);
    DramSystem dram{DramConfig{}};
    Rng rng(window);
    for (int trial = 0; trial < 50; ++trial) {
        queue.clear();
        const Addr miss = rng.below(1u << 26) << kBlockShift;
        queue.noteSpatialMiss(miss, window, 0, 0);
        const uint64_t base_block =
            blockNumber(miss) & ~static_cast<uint64_t>(window - 1);
        unsigned count = 0;
        for (int draws = 0; draws < 200; ++draws) {
            bool any = false;
            for (unsigned ch = 0; ch < 4; ++ch) {
                auto cand = queue.dequeue(dram, ch);
                if (!cand)
                    continue;
                any = true;
                ++count;
                const uint64_t block = blockNumber(cand->blockAddr);
                EXPECT_GE(block, base_block);
                EXPECT_LT(block, base_block + window);
                EXPECT_NE(block, blockNumber(miss));
            }
            if (!any)
                break;
        }
        EXPECT_EQ(count, window - 1);
    }
}

INSTANTIATE_TEST_SUITE_P(Windows, RegionWindowProperty,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u,
                                           64u));

// ---------------------------------------------------------------
// Hint encoding properties.
// ---------------------------------------------------------------

struct EncodingCase
{
    uint8_t coeff;
    uint32_t bound;
};

class HintEncodingProperty
    : public ::testing::TestWithParam<EncodingCase>
{
};

TEST_P(HintEncodingProperty, RegionBlocksIsBoundedPowerOfTwo)
{
    LoadHints hints;
    hints.flags = kHintSpatial | kHintSizeValid;
    hints.sizeCoeff = GetParam().coeff;
    hints.loopBound = GetParam().bound;
    const unsigned blocks = hints.regionBlocks(kBlocksPerRegion);
    EXPECT_TRUE(isPowerOfTwo(blocks));
    EXPECT_GE(blocks, 2u);
    EXPECT_LE(blocks, kBlocksPerRegion);
    // The window always covers the loop's span (up to the cap).
    const uint64_t span_bytes =
        static_cast<uint64_t>(GetParam().bound)
        << GetParam().coeff;
    if (blocks < kBlocksPerRegion)
        EXPECT_GE(static_cast<uint64_t>(blocks) * kBlockBytes,
                  span_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HintEncodingProperty,
    ::testing::Values(EncodingCase{0, 1}, EncodingCase{0, 200},
                      EncodingCase{2, 16}, EncodingCase{3, 12},
                      EncodingCase{3, 512}, EncodingCase{6, 3},
                      EncodingCase{6, 100'000},
                      EncodingCase{5, 64}));

// ---------------------------------------------------------------
// DRAM mapping properties.
// ---------------------------------------------------------------

class DramMappingProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DramMappingProperty, MappingIsStableAndSplitsTraffic)
{
    DramSystem dram{DramConfig{}};
    Rng rng(GetParam());
    std::set<unsigned> channels;
    for (int i = 0; i < 4096; ++i) {
        const Addr addr = rng.below(1ull << 32);
        const unsigned channel = dram.channelOf(addr);
        EXPECT_LT(channel, 4u);
        EXPECT_EQ(channel, dram.channelOf(addr)); // Stable.
        EXPECT_LT(dram.bankOf(addr), 16u);
        channels.insert(channel);
        // Same block => same mapping regardless of offset.
        EXPECT_EQ(dram.channelOf(blockAlign(addr)), channel);
        EXPECT_EQ(dram.rowOf(blockAlign(addr)), dram.rowOf(addr));
    }
    EXPECT_EQ(channels.size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DramMappingProperty,
                         ::testing::Values(1ull, 2ull, 3ull));

} // namespace
} // namespace grp
