/** @file Unit tests for the live-telemetry pulse subsystem. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "harness/runner.hh"
#include "obs/json_reader.hh"
#include "obs/pulse.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream file(path);
    std::stringstream ss;
    ss << file.rdbuf();
    return ss.str();
}

obs::PulseAnalysis
analyzeString(const std::string &text)
{
    std::istringstream is(text);
    return obs::analyzePulse(is);
}

obs::PulseAnalysis
analyzeFile(const std::string &path)
{
    std::ifstream is(path);
    return obs::analyzePulse(is);
}

class PulseTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setQuiet(true);
        obs::clearStopRequest();
        obs::setPulseJobLabel(std::string());
    }

    void TearDown() override
    {
        obs::clearStopRequest();
        obs::setPulseJobLabel(std::string());
    }
};

obs::PulseSample
sample(uint64_t instructions, uint64_t cycles)
{
    obs::PulseSample s;
    s.instructions = instructions;
    s.cycles = cycles;
    return s;
}

TEST_F(PulseTest, MeterDerivesIntervalFromTarget)
{
    obs::PulseRunMeta meta;
    meta.targetInstructions = 250'000;
    obs::PulseMeter meter(nullptr, true, PulseConfig{}, meta);
    EXPECT_EQ(meter.intervalInstructions(), 2500u);

    meta.targetInstructions = 50'000; // 1% would be 500 -> floor 1000
    obs::PulseMeter small(nullptr, true, PulseConfig{}, meta);
    EXPECT_EQ(small.intervalInstructions(), 1000u);

    PulseConfig config;
    config.intervalInstructions = 12'345; // Explicit beats derived.
    obs::PulseMeter fixed(nullptr, true, config, meta);
    EXPECT_EQ(fixed.intervalInstructions(), 12'345u);
    EXPECT_FALSE(fixed.due(12'344));
    EXPECT_TRUE(fixed.due(12'345));
}

TEST_F(PulseTest, SingleRunStreamSealsHealthy)
{
    const std::string path = tempPath("pulse_healthy.jsonl");
    {
        auto sink = std::make_shared<obs::PulseSink>(path);
        ASSERT_TRUE(sink->ok());
        obs::PulseRunMeta meta;
        meta.workload = "mcf";
        meta.scheme = "grp-var";
        meta.seed = 7;
        meta.targetInstructions = 10'000;
        obs::PulseMeter meter(sink, true, PulseConfig{}, meta);
        meter.beat(sample(1000, 400));
        meter.beat(sample(2000, 800));
        meter.finish(sample(10'000, 4000), false, "completed");
    }
    const obs::PulseAnalysis analysis = analyzeFile(path);
    EXPECT_EQ(analysis.verdict, obs::PulseVerdict::Healthy);
    EXPECT_TRUE(analysis.sealed);
    EXPECT_FALSE(analysis.partial);
    EXPECT_EQ(analysis.beats, 3u); // finish() emits the final beat.
    EXPECT_EQ(analysis.warnings, 0u);
    ASSERT_EQ(analysis.jobs.size(), 1u);
    const obs::PulseJobSummary &job = analysis.jobs.begin()->second;
    EXPECT_EQ(job.workload, "mcf");
    EXPECT_EQ(job.scheme, "grp-var");
    EXPECT_EQ(job.instructions, 10'000u);
    EXPECT_EQ(job.targetInstructions, 10'000u);
    EXPECT_TRUE(job.ended);
    EXPECT_FALSE(job.partial);
    std::remove(path.c_str());
}

TEST_F(PulseTest, PartialSealIsHealthyButMarked)
{
    const std::string path = tempPath("pulse_partial.jsonl");
    {
        auto sink = std::make_shared<obs::PulseSink>(path);
        obs::PulseRunMeta meta;
        meta.targetInstructions = 100'000;
        obs::PulseMeter meter(sink, true, PulseConfig{}, meta);
        meter.beat(sample(1000, 500));
        meter.finish(sample(1500, 700), true, "interrupted");
    }
    const obs::PulseAnalysis analysis = analyzeFile(path);
    EXPECT_EQ(analysis.verdict, obs::PulseVerdict::Healthy);
    EXPECT_TRUE(analysis.sealed);
    EXPECT_TRUE(analysis.partial);
    ASSERT_EQ(analysis.jobs.size(), 1u);
    EXPECT_TRUE(analysis.jobs.begin()->second.partial);
    std::remove(path.c_str());
}

TEST_F(PulseTest, UnsealedStreamIsTruncated)
{
    const std::string path = tempPath("pulse_trunc.jsonl");
    {
        auto sink = std::make_shared<obs::PulseSink>(path);
        obs::PulseRunMeta meta;
        meta.targetInstructions = 10'000;
        obs::PulseMeter meter(sink, true, PulseConfig{}, meta);
        meter.beat(sample(1000, 400));
        // Simulate a kill -9: drop the sink without finish()/seal()
        // by re-reading the live file *before* destruction.
        const obs::PulseAnalysis live = analyzeFile(path);
        EXPECT_EQ(live.verdict, obs::PulseVerdict::Truncated);
        EXPECT_FALSE(live.sealed);
        EXPECT_EQ(live.beats, 1u);
    }
    std::remove(path.c_str());
}

TEST_F(PulseTest, TornTailCountsAsTruncatedNotMalformed)
{
    std::string text =
        "{\"ev\":\"start\",\"seq\":0,\"tMonoNs\":10,"
        "\"schema\":\"grp-pulse-v1\",\"workload\":\"mcf\","
        "\"scheme\":\"srp\",\"seed\":1,\"targetInstructions\":1000,"
        "\"intervalInstructions\":100,\"wallFloorMillis\":250,"
        "\"pid\":1}\n"
        "{\"ev\":\"beat\",\"seq\":1,\"tMonoNs\":20,\"instructions\":"
        "100,\"cycles\":50,\"instPerSec\":1.0,\"dInstructions\":100}\n"
        "{\"ev\":\"beat\",\"seq\":2,\"tMo"; // torn mid-record
    const obs::PulseAnalysis analysis = analyzeString(text);
    EXPECT_EQ(analysis.verdict, obs::PulseVerdict::Truncated);
    EXPECT_TRUE(analysis.tornTail);
}

TEST_F(PulseTest, WatchdogWarningsMakeStreamStalled)
{
    const std::string path = tempPath("pulse_stalled.jsonl");
    {
        auto sink = std::make_shared<obs::PulseSink>(path);
        obs::PulseRunMeta meta;
        meta.targetInstructions = 100'000;
        obs::PulseMeter meter(sink, true, PulseConfig{}, meta);
        meter.beat(sample(1000, 5000));
        // Zero instructions across a wall-floor beat with real
        // simulated progress: the definition of a stalled sim.
        meter.beat(sample(1000, 50'000));
        EXPECT_EQ(meter.warnings(), 1u);
        meter.finish(sample(1000, 60'000), false, "completed");
    }
    const obs::PulseAnalysis analysis = analyzeFile(path);
    EXPECT_EQ(analysis.verdict, obs::PulseVerdict::Stalled);
    EXPECT_GE(analysis.warnings, 1u);
    EXPECT_TRUE(analysis.sealed);
    std::remove(path.c_str());
}

TEST_F(PulseTest, HostDeschedulingIsNotAStall)
{
    const std::string path = tempPath("pulse_desched.jsonl");
    {
        auto sink = std::make_shared<obs::PulseSink>(path);
        obs::PulseRunMeta meta;
        meta.targetInstructions = 100'000;
        obs::PulseMeter meter(sink, true, PulseConfig{}, meta);
        meter.beat(sample(1000, 5000));
        // Wall floor fired after the host thread was descheduled:
        // almost no cycles simulated, so no verdict on the sim.
        meter.beat(sample(1000, 5010));
        EXPECT_EQ(meter.warnings(), 0u);
        meter.finish(sample(2000, 9000), false, "completed");
    }
    EXPECT_EQ(analyzeFile(path).verdict, obs::PulseVerdict::Healthy);
    std::remove(path.c_str());
}

TEST_F(PulseTest, SlowdownWarningsAreAdvisoryNotStalled)
{
    // Slowdown warns compare wall-clock inst/s, which a noisy host
    // can depress in a healthy run — they appear in the stream and
    // the warning counts, but must not flip the verdict the way a
    // (simulated-cycle-gated) stall warn does.
    const std::string path = tempPath("pulse_slowdown.jsonl");
    {
        auto sink = std::make_shared<obs::PulseSink>(path);
        obs::PulseRunMeta meta;
        meta.targetInstructions = 10'000'000;
        obs::PulseMeter meter(sink, true, PulseConfig{}, meta);
        // Establish a healthy baseline: huge instruction deltas per
        // (microsecond-scale) beat gap.
        uint64_t inst = 0, cycles = 0;
        for (int i = 0; i < 4; ++i) {
            inst += 1'000'000;
            cycles += 1'000'000;
            meter.beat(sample(inst, cycles));
        }
        // Then collapse: one instruction per beat is orders of
        // magnitude below the EMA however fast the loop runs.
        for (int i = 0; i < 6; ++i) {
            inst += 1;
            cycles += 10;
            meter.beat(sample(inst, cycles));
        }
        EXPECT_GE(meter.warnings(), 1u);
        meter.finish(sample(inst + 1, cycles + 10), false,
                     "completed");
    }
    const obs::PulseAnalysis analysis = analyzeFile(path);
    EXPECT_GE(analysis.warnings, 1u);
    EXPECT_EQ(analysis.verdict, obs::PulseVerdict::Healthy);
    EXPECT_TRUE(analysis.sealed);
    std::remove(path.c_str());
}

TEST_F(PulseTest, MultiplexedJobsEndIndependently)
{
    const std::string path = tempPath("pulse_mux.jsonl");
    {
        auto sink = std::make_shared<obs::PulseSink>(path);
        obs::PulseRunMeta a, b;
        a.job = "mcf/srp";
        a.workload = "mcf";
        a.scheme = "srp";
        a.targetInstructions = 10'000;
        b.job = "gzip/none";
        b.workload = "gzip";
        b.scheme = "none";
        b.targetInstructions = 20'000;
        obs::PulseMeter ma(sink, false, PulseConfig{}, a);
        obs::PulseMeter mb(sink, false, PulseConfig{}, b);
        ma.beat(sample(1000, 500));
        mb.beat(sample(2000, 900));
        ma.finish(sample(10'000, 4000), false, "completed");
        mb.finish(sample(20'000, 9000), false, "completed");
        sink->seal(false, "completed");
    }
    const obs::PulseAnalysis analysis = analyzeFile(path);
    EXPECT_EQ(analysis.verdict, obs::PulseVerdict::Healthy);
    ASSERT_EQ(analysis.jobs.size(), 2u);
    EXPECT_TRUE(analysis.jobs.count("mcf/srp"));
    EXPECT_TRUE(analysis.jobs.count("gzip/none"));
    for (const auto &[name, job] : analysis.jobs) {
        EXPECT_TRUE(job.ended) << name;
        EXPECT_FALSE(job.partial) << name;
    }
    std::remove(path.c_str());
}

TEST_F(PulseTest, SeqRegressionIsMalformed)
{
    std::string text =
        "{\"ev\":\"beat\",\"seq\":5,\"tMonoNs\":10,\"instructions\":"
        "100}\n"
        "{\"ev\":\"beat\",\"seq\":4,\"tMonoNs\":20,\"instructions\":"
        "200}\n";
    const obs::PulseAnalysis analysis = analyzeString(text);
    EXPECT_EQ(analysis.verdict, obs::PulseVerdict::Malformed);
    EXPECT_FALSE(analysis.problems.empty());
}

TEST_F(PulseTest, GarbageInteriorLineIsMalformed)
{
    std::string text =
        "{\"ev\":\"beat\",\"seq\":0,\"tMonoNs\":10,\"instructions\":"
        "100}\n"
        "not json at all\n"
        "{\"ev\":\"beat\",\"seq\":1,\"tMonoNs\":20,\"instructions\":"
        "200}\n";
    EXPECT_EQ(analyzeString(text).verdict,
              obs::PulseVerdict::Malformed);
}

TEST_F(PulseTest, RecordAfterSealIsMalformed)
{
    std::string text =
        "{\"ev\":\"beat\",\"seq\":0,\"tMonoNs\":10,\"instructions\":"
        "100}\n"
        "{\"ev\":\"seal\",\"seq\":1,\"tMonoNs\":20,\"beats\":1,"
        "\"warnings\":0,\"partial\":false,\"reason\":\"completed\"}\n"
        "{\"ev\":\"beat\",\"seq\":2,\"tMonoNs\":30,\"instructions\":"
        "200}\n";
    EXPECT_EQ(analyzeString(text).verdict,
              obs::PulseVerdict::Malformed);
}

TEST_F(PulseTest, InstructionCounterRegressionIsMalformed)
{
    std::string text =
        "{\"ev\":\"beat\",\"seq\":0,\"tMonoNs\":10,\"instructions\":"
        "5000}\n"
        "{\"ev\":\"beat\",\"seq\":1,\"tMonoNs\":20,\"instructions\":"
        "4000}\n";
    EXPECT_EQ(analyzeString(text).verdict,
              obs::PulseVerdict::Malformed);
}

TEST_F(PulseTest, WarmupCounterResetDoesNotWrapDeltas)
{
    const std::string path = tempPath("pulse_reset.jsonl");
    {
        auto sink = std::make_shared<obs::PulseSink>(path);
        obs::PulseRunMeta meta;
        meta.targetInstructions = 10'000;
        obs::PulseMeter meter(sink, true, PulseConfig{}, meta);
        obs::PulseSample before = sample(1000, 500);
        before.prefetchFills = 800;
        meter.beat(before);
        // Warmup boundary reset the mem counters to near zero; the
        // delta must be the post-reset value, not a uint64 wrap.
        obs::PulseSample after = sample(2000, 900);
        after.prefetchFills = 50;
        meter.beat(after);
        meter.finish(after, false, "completed");
    }
    std::string error;
    std::istringstream is(slurp(path));
    std::string line;
    bool checked = false;
    while (std::getline(is, line)) {
        const auto record = obs::parseJson(line, &error);
        ASSERT_TRUE(record) << error;
        const obs::JsonValue *ev = record->find("ev");
        const obs::JsonValue *fills = record->find("dFills");
        if (ev && ev->asString() == "beat" && fills &&
            fills->asNumber() == 50.0)
            checked = true;
        if (fills) {
            EXPECT_LT(fills->asNumber(), 1e9);
        }
    }
    EXPECT_TRUE(checked);
    std::remove(path.c_str());
}

TEST_F(PulseTest, RunnerEmitsHealthySealedStream)
{
    const std::string pulse_path = tempPath("pulse_run.jsonl");
    SimConfig config;
    config.scheme = PrefetchScheme::Srp;
    RunOptions opts;
    opts.maxInstructions = 40'000;
    opts.obs.pulsePath = pulse_path;
    const RunResult result = runWorkload("mcf", config, opts);
    EXPECT_FALSE(result.partial);
    const obs::PulseAnalysis analysis = analyzeFile(pulse_path);
    EXPECT_EQ(analysis.verdict, obs::PulseVerdict::Healthy);
    EXPECT_TRUE(analysis.sealed);
    EXPECT_GT(analysis.beats, 10u);
    ASSERT_EQ(analysis.jobs.size(), 1u);
    const obs::PulseJobSummary &job = analysis.jobs.begin()->second;
    EXPECT_EQ(job.workload, "mcf");
    EXPECT_EQ(job.targetInstructions, 50'000u); // + warmup quarter
    EXPECT_GE(job.instructions, 50'000u);
    std::remove(pulse_path.c_str());
}

TEST_F(PulseTest, RunnerPulseOffChangesNothing)
{
    // Identical runs with and without telemetry must agree on every
    // simulated number — the beat hooks observe, never perturb.
    SimConfig config;
    config.scheme = PrefetchScheme::GrpVar;
    RunOptions plain;
    plain.maxInstructions = 30'000;
    const RunResult base = runWorkload("equake", config, plain);
    RunOptions pulsed = plain;
    pulsed.obs.pulsePath = tempPath("pulse_identity.jsonl");
    const RunResult with = runWorkload("equake", config, pulsed);
    EXPECT_EQ(base.cycles, with.cycles);
    EXPECT_EQ(base.instructions, with.instructions);
    EXPECT_EQ(base.prefetchFills, with.prefetchFills);
    EXPECT_EQ(base.usefulPrefetches, with.usefulPrefetches);
    std::remove(pulsed.obs.pulsePath.c_str());
}

TEST_F(PulseTest, StopRequestYieldsPartialResultAndMarkedExports)
{
    const std::string stats_path = tempPath("pulse_stop_stats.json");
    const std::string pulse_path = tempPath("pulse_stop.jsonl");
    SimConfig config;
    RunOptions opts;
    opts.maxInstructions = 400'000; // Long enough to hit the mask.
    opts.obs.pulsePath = pulse_path;
    opts.obs.statsJsonPath = stats_path;
    obs::requestStop();
    const RunResult result = runWorkload("mcf", config, opts);
    obs::clearStopRequest();
    EXPECT_TRUE(result.partial);
    EXPECT_LT(result.instructions + result.cycles, 500'000u);

    std::string error;
    const auto stats = obs::parseJson(slurp(stats_path), &error);
    ASSERT_TRUE(stats) << error;
    const obs::JsonValue *partial = stats->find("partial");
    ASSERT_NE(partial, nullptr);
    EXPECT_TRUE(partial->asBool());

    const obs::PulseAnalysis analysis = analyzeFile(pulse_path);
    EXPECT_EQ(analysis.verdict, obs::PulseVerdict::Healthy);
    EXPECT_TRUE(analysis.sealed);
    EXPECT_TRUE(analysis.partial);
    std::remove(stats_path.c_str());
    std::remove(pulse_path.c_str());
}

TEST_F(PulseTest, StopWorksWithoutPulse)
{
    SimConfig config;
    RunOptions opts;
    opts.maxInstructions = 400'000;
    obs::requestStop();
    const RunResult result = runWorkload("gzip", config, opts);
    obs::clearStopRequest();
    EXPECT_TRUE(result.partial);
}

TEST_F(PulseTest, AnalyzeEmptyStreamIsTruncated)
{
    EXPECT_EQ(analyzeString("").verdict, obs::PulseVerdict::Truncated);
}

TEST_F(PulseTest, PulseConfigValidation)
{
    PulseConfig bad;
    bad.dropPct = 120.0;
    EXPECT_THROW(bad.validate(), std::runtime_error);
    bad = PulseConfig{};
    bad.dropSustainBeats = 0;
    EXPECT_THROW(bad.validate(), std::runtime_error);
}

} // namespace
} // namespace grp
