/** @file Unit tests for the DRAM timing model. */

#include <gtest/gtest.h>

#include <set>

#include "mem/dram.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

class DramTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    DramConfig config; // Defaults: 4 ch, 16 banks, 2 KB rows.
};

TEST_F(DramTest, BlocksInterleaveAcrossChannels)
{
    DramSystem dram(config);
    for (unsigned i = 0; i < 16; ++i) {
        const Addr addr = static_cast<Addr>(i) << kBlockShift;
        EXPECT_EQ(dram.channelOf(addr), i % 4);
    }
}

TEST_F(DramTest, ConsecutiveChannelBlocksShareARow)
{
    DramSystem dram(config);
    // Blocks 0 and 4 are consecutive on channel 0.
    EXPECT_EQ(dram.channelOf(0), dram.channelOf(4 << kBlockShift));
    EXPECT_EQ(dram.rowOf(0), dram.rowOf(4 << kBlockShift));
    EXPECT_EQ(dram.bankOf(0), dram.bankOf(4 << kBlockShift));
}

TEST_F(DramTest, RowConflictThenRowHitTiming)
{
    DramSystem dram(config);
    const Addr addr = 0x40; // Channel 1.
    const Tick first = dram.serve(addr, 0);
    EXPECT_EQ(first, config.rowConflictCycles + config.transferCycles);
    // Same row, later: row hit.
    const Tick busy_until = config.transferCycles;
    const Tick second = dram.serve(addr + 4 * kBlockBytes, busy_until);
    EXPECT_EQ(second, busy_until + config.rowHitCycles +
                          config.transferCycles);
    EXPECT_EQ(dram.stats().value("rowHits"), 1u);
    EXPECT_EQ(dram.stats().value("rowConflicts"), 1u);
}

TEST_F(DramTest, ChannelOccupiedOnlyForTransfer)
{
    DramSystem dram(config);
    dram.serve(0x40, 0);
    EXPECT_FALSE(dram.channelIdle(1, config.transferCycles - 1));
    EXPECT_TRUE(dram.channelIdle(1, config.transferCycles));
    // Other channels stay idle throughout.
    EXPECT_TRUE(dram.channelIdle(0, 0));
    EXPECT_TRUE(dram.channelIdle(2, 0));
}

TEST_F(DramTest, ServingBusyChannelPanics)
{
    DramSystem dram(config);
    dram.serve(0x40, 0);
    EXPECT_THROW(dram.serve(0x40 + 4 * kBlockBytes, 1),
                 std::logic_error);
}

TEST_F(DramTest, RowOpenTracking)
{
    DramSystem dram(config);
    EXPECT_FALSE(dram.rowOpen(0x40));
    dram.serve(0x40, 0);
    EXPECT_TRUE(dram.rowOpen(0x40));
    EXPECT_TRUE(dram.rowOpen(0x40 + 4 * kBlockBytes)); // Same row.
    // A different row in the same bank closes the old one.
    const Addr same_bank_other_row =
        0x40 + static_cast<Addr>(config.rowBytes) *
                   config.banksPerChannel * 4;
    ASSERT_EQ(dram.channelOf(same_bank_other_row), 1u);
    ASSERT_EQ(dram.bankOf(same_bank_other_row), dram.bankOf(0x40));
    dram.serve(same_bank_other_row, 1000);
    EXPECT_FALSE(dram.rowOpen(0x40));
}

TEST_F(DramTest, BanksPartitionTheChannel)
{
    DramSystem dram(config);
    std::set<unsigned> banks;
    // Walk one channel at row granularity: banks should cycle.
    for (unsigned i = 0; i < config.banksPerChannel; ++i) {
        const Addr addr =
            static_cast<Addr>(config.rowBytes) * 4 * i;
        ASSERT_EQ(dram.channelOf(addr), 0u);
        banks.insert(dram.bankOf(addr));
    }
    EXPECT_EQ(banks.size(), config.banksPerChannel);
}

TEST_F(DramTest, TransferCounting)
{
    DramSystem dram(config);
    dram.serve(0x0, 0);
    dram.serve(0x40, 0);
    EXPECT_EQ(dram.transfersServed(), 2u);
    dram.reset();
    EXPECT_EQ(dram.transfersServed(), 0u);
    EXPECT_TRUE(dram.channelIdle(0, 0));
    EXPECT_FALSE(dram.rowOpen(0x0));
}

TEST_F(DramTest, ServeRemembersOccupantForAttribution)
{
    DramSystem dram(config);
    dram.serve(0x40, 0, ReqClass::Prefetch, 7,
               obs::HintClass::Spatial);
    EXPECT_EQ(dram.occupantClass(1), ReqClass::Prefetch);
    EXPECT_EQ(dram.occupantRef(1), 7u);
    EXPECT_EQ(dram.occupantHint(1), obs::HintClass::Spatial);
    // The demand overload resets the attribution fields.
    dram.serve(0x0, 0);
    EXPECT_EQ(dram.occupantClass(0), ReqClass::Demand);
    EXPECT_EQ(dram.occupantRef(0), kInvalidRefId);
    EXPECT_EQ(dram.occupantHint(0), obs::HintClass::None);
}

/** Satellite: mixed demand/prefetch/writeback load — every accounted
 *  cycle lands in exactly one class bucket, so the per-channel
 *  breakdown sums to the channel's total by construction. */
TEST_F(DramTest, ChannelCycleBreakdownSumsToTotal)
{
    DramSystem dram(config);
    // Channel 0: demand; channel 1: prefetch; channel 2: writeback;
    // channel 3 stays idle. Account 10 cycles of transfer plus 5
    // cycles after every transfer has drained.
    dram.serve(0x0, 0, ReqClass::Demand);
    dram.serve(0x40, 0, ReqClass::Prefetch, 3,
               obs::HintClass::Stride);
    dram.serve(0x80, 0, ReqClass::Writeback);
    for (Tick t = 0; t < 10; ++t)
        for (unsigned ch = 0; ch < config.channels; ++ch)
            dram.noteChannelCycle(ch, t);
    const Tick drained = config.rowConflictCycles +
                         config.transferCycles + 100;
    for (Tick t = drained; t < drained + 5; ++t)
        for (unsigned ch = 0; ch < config.channels; ++ch)
            dram.noteChannelCycle(ch, t);

    const DramSystem::ChannelCycles c0 = dram.channelCycles(0);
    const DramSystem::ChannelCycles c1 = dram.channelCycles(1);
    const DramSystem::ChannelCycles c2 = dram.channelCycles(2);
    const DramSystem::ChannelCycles c3 = dram.channelCycles(3);
    EXPECT_EQ(c0.demand, 10u);
    EXPECT_EQ(c1.prefetch, 10u);
    EXPECT_EQ(c2.writeback, 10u);
    EXPECT_EQ(c3.idle, 15u);
    EXPECT_EQ(c0.idle, 5u);
    for (unsigned ch = 0; ch < config.channels; ++ch) {
        const DramSystem::ChannelCycles c = dram.channelCycles(ch);
        EXPECT_EQ(c.total(), 15u) << "channel " << ch;
        EXPECT_EQ(c.total(),
                  dram.stats().value("ch" + std::to_string(ch) +
                                     "Cycles"))
            << "channel " << ch;
    }
    // Aggregates mirror the per-channel sums.
    EXPECT_EQ(dram.stats().value("contentionDemandCycles"), 10u);
    EXPECT_EQ(dram.stats().value("contentionPrefetchCycles"), 10u);
    EXPECT_EQ(dram.stats().value("contentionWritebackCycles"), 10u);
    EXPECT_EQ(dram.stats().value("contentionIdleCycles"), 30u);
}

TEST_F(DramTest, DemandStallAccumulatesWaitingRequests)
{
    DramSystem dram(config);
    EXPECT_EQ(dram.stats().value("contentionDemandStallCycles"), 0u);
    dram.noteDemandStall(2);
    dram.noteDemandStall(3);
    EXPECT_EQ(dram.stats().value("contentionDemandStallCycles"), 5u);
    dram.stats().reset();
    EXPECT_EQ(dram.stats().value("contentionDemandStallCycles"), 0u);
    // The cached counter survives the reset.
    dram.noteDemandStall(1);
    EXPECT_EQ(dram.stats().value("contentionDemandStallCycles"), 1u);
}

/** Region streaming property: the 64 blocks of a region land evenly
 *  on the 4 channels with 16 blocks per channel, all in one row. */
TEST_F(DramTest, RegionStreamsAcrossAllChannels)
{
    DramSystem dram(config);
    unsigned per_channel[4] = {};
    std::set<uint64_t> rows;
    for (unsigned i = 0; i < kBlocksPerRegion; ++i) {
        const Addr addr = static_cast<Addr>(i) << kBlockShift;
        ++per_channel[dram.channelOf(addr)];
        rows.insert(dram.rowOf(addr));
    }
    for (unsigned ch = 0; ch < 4; ++ch)
        EXPECT_EQ(per_channel[ch], kBlocksPerRegion / 4);
    EXPECT_EQ(rows.size(), 1u);
}

} // namespace
} // namespace grp
