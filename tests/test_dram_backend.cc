/** @file Tests for the pluggable DRAM backend layer: factory/env
 *  resolution, timing-model protocol invariants checked against the
 *  recorded command stream, FR-FCFS demand priority, refresh cadence,
 *  stat-schema parity with the legacy model, and the per-bank
 *  state-cycle accounting identity. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <vector>

#include "harness/provenance.hh"
#include "mem/dram.hh"
#include "mem/dram_backend/factory.hh"
#include "mem/dram_backend/timing.hh"
#include "mem/memory_system.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

unsigned
log2u(unsigned v)
{
    unsigned shift = 0;
    while ((1u << shift) < v)
        ++shift;
    return shift;
}

/** Compose the block address that maps to (channel, bank, row,
 *  block-in-row) under the backend's block-interleaved layout. */
Addr
makeAddr(const DramConfig &cfg, unsigned channel, unsigned bank,
         uint64_t row, unsigned block = 0)
{
    const unsigned blocks_per_row_shift = log2u(cfg.rowBytes / kBlockBytes);
    const unsigned bank_shift = log2u(cfg.banksPerChannel);
    const unsigned channel_shift = log2u(cfg.channels);
    const uint64_t channel_block =
        (((row << bank_shift) | bank) << blocks_per_row_shift) | block;
    const uint64_t block_number = (channel_block << channel_shift) | channel;
    return static_cast<Addr>(block_number) << kBlockShift;
}

class DramBackendTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setQuiet(true);
        unsetenv("GRP_DRAM");
    }

    /** A timing backend with its preset geometry applied. */
    std::unique_ptr<TimingDramSystem>
    makeTiming(const std::string &preset_name)
    {
        const DramPreset *preset = findDramPreset(preset_name);
        EXPECT_NE(preset, nullptr);
        DramConfig cfg;
        cfg.backend = preset_name;
        cfg.channels = preset->channels;
        cfg.banksPerChannel = preset->banksPerChannel;
        cfg.rowBytes = preset->rowBytes;
        return std::make_unique<TimingDramSystem>(cfg, preset->timing,
                                                  preset_name);
    }

    /** Tick @p dram from @p from to @p to inclusive, draining
     *  completions into @p fills when given. */
    void
    run(TimingDramSystem &dram, Tick from, Tick to,
        std::vector<MemRequest> *fills = nullptr)
    {
        for (Tick t = from; t <= to; ++t) {
            dram.tick(t);
            while (auto req = dram.popCompleted(t)) {
                if (fills)
                    fills->push_back(*req);
            }
        }
    }
};

// ---------------------------------------------------------------------
// Factory and name resolution.
// ---------------------------------------------------------------------

TEST_F(DramBackendTest, DefaultResolvesToLegacy)
{
    EXPECT_EQ(resolveDramBackendName(""), "legacy");
    DramConfig cfg;
    auto dram = makeDramBackend(cfg);
    EXPECT_STREQ(dram->name(), "legacy");
    EXPECT_FALSE(dram->queued());
}

TEST_F(DramBackendTest, EnvironmentSelectsBackend)
{
    setenv("GRP_DRAM", "hbm2", 1);
    EXPECT_EQ(resolveDramBackendName(""), "hbm2");
    // An explicit configuration wins over the environment.
    EXPECT_EQ(resolveDramBackendName("lpddr4"), "lpddr4");
    unsetenv("GRP_DRAM");
    EXPECT_EQ(resolveDramBackendName(""), "legacy");
}

TEST_F(DramBackendTest, PresetGeometryAppliedOnResolve)
{
    const DramPreset *preset = findDramPreset("hbm2");
    ASSERT_NE(preset, nullptr);
    DramConfig cfg;
    cfg.backend = "hbm2";
    resolveDramBackend(cfg);
    EXPECT_EQ(cfg.channels, preset->channels);
    EXPECT_EQ(cfg.banksPerChannel, preset->banksPerChannel);
    EXPECT_EQ(cfg.rowBytes, preset->rowBytes);

    auto dram = makeDramBackend(cfg);
    EXPECT_TRUE(dram->queued());
    EXPECT_STREQ(dram->name(), "hbm2");
    EXPECT_EQ(dram->config().channels, preset->channels);
}

TEST_F(DramBackendTest, EveryPresetConstructs)
{
    for (const std::string &name : dramPresetNames()) {
        auto dram = makeTiming(name);
        ASSERT_NE(dram, nullptr) << name;
        EXPECT_STREQ(dram->name(), name.c_str());
        EXPECT_TRUE(dram->queued());
    }
}

TEST_F(DramBackendTest, ConfigHashUnchangedForLegacyOnly)
{
    SimConfig base;
    const uint64_t legacy_hash = configHash(base);

    SimConfig named = base;
    named.dram.backend = "legacy";
    EXPECT_EQ(configHash(named), legacy_hash);

    SimConfig timing = base;
    timing.dram.backend = "ddr4-2400";
    EXPECT_NE(configHash(timing), legacy_hash);
}

// ---------------------------------------------------------------------
// Queued-backend mechanics.
// ---------------------------------------------------------------------

TEST_F(DramBackendTest, ServeReturnsPendingAndQueueBounds)
{
    auto dram = makeTiming("ddr4-2400");
    const DramConfig &cfg = dram->config();
    const unsigned depth = dram->timing().queueDepth;

    for (unsigned i = 0; i < depth; ++i) {
        EXPECT_TRUE(dram->canAccept(0, 0));
        const Tick done =
            dram->serve(makeAddr(cfg, 0, i % cfg.banksPerChannel, i), 0,
                        ReqClass::Prefetch);
        EXPECT_EQ(done, kTickPending);
    }
    EXPECT_FALSE(dram->canAccept(0, 0));
    EXPECT_FALSE(dram->allIdle(0));
    // Other channels are unaffected.
    EXPECT_TRUE(dram->canAccept(1, 0));

    std::vector<MemRequest> fills;
    run(*dram, 0, 5000, &fills);
    EXPECT_EQ(fills.size(), depth);
    EXPECT_TRUE(dram->canAccept(0, 5001));
    EXPECT_TRUE(dram->allIdle(5001));
}

TEST_F(DramBackendTest, FillsCompleteInDataOrder)
{
    auto dram = makeTiming("ddr4-2400");
    const DramConfig &cfg = dram->config();
    for (unsigned i = 0; i < 6; ++i)
        dram->serve(makeAddr(cfg, 0, i, 0), 0, ReqClass::Demand);
    std::vector<MemRequest> fills;
    run(*dram, 0, 5000, &fills);
    ASSERT_EQ(fills.size(), 6u);
    // Popping preserves completion (dataEnd) order; with one bus the
    // fills drain strictly serialized.
    for (size_t i = 1; i < fills.size(); ++i)
        EXPECT_NE(fills[i].blockAddr, fills[i - 1].blockAddr);
}

TEST_F(DramBackendTest, WritebacksRetireInternally)
{
    auto dram = makeTiming("ddr4-2400");
    const DramConfig &cfg = dram->config();
    dram->serve(makeAddr(cfg, 0, 0, 0), 0, ReqClass::Writeback);
    std::vector<MemRequest> fills;
    run(*dram, 0, 2000, &fills);
    EXPECT_TRUE(fills.empty());
    EXPECT_TRUE(dram->allIdle(2001));
    EXPECT_EQ(dram->stats().value("transfers"), 1u);
}

// ---------------------------------------------------------------------
// Protocol invariants, checked against the recorded command stream.
// ---------------------------------------------------------------------

using Cmd = TimingDramSystem::Cmd;
using CommandRecord = TimingDramSystem::CommandRecord;

/** Assert the JEDEC-style constraints hold over @p log. */
void
checkProtocol(const std::vector<CommandRecord> &log,
              const DramTimingParams &t, unsigned channels)
{
    // Per-channel ACT history (ticks, already monotonic).
    std::vector<std::vector<Tick>> acts(channels);
    // Per-(channel,bank) last command ticks.
    std::map<std::pair<unsigned, unsigned>, Tick> last_act;
    std::map<std::pair<unsigned, unsigned>, Tick> last_pre;
    // Per-channel refresh windows [start, end).
    std::vector<std::vector<std::pair<Tick, Tick>>> refs(channels);

    for (const CommandRecord &c : log) {
        const auto key = std::make_pair(c.channel, c.bank);
        switch (c.cmd) {
          case Cmd::Act: {
            auto &hist = acts[c.channel];
            if (!hist.empty()) {
                EXPECT_GE(c.tick, hist.back() + t.tRRD)
                    << "tRRD violated on channel " << c.channel;
            }
            if (hist.size() >= 4) {
                EXPECT_GE(c.tick, hist[hist.size() - 4] + t.tFAW)
                    << "tFAW violated on channel " << c.channel;
            }
            hist.push_back(c.tick);
            auto pre = last_pre.find(key);
            if (pre != last_pre.end()) {
                EXPECT_GE(c.tick, pre->second + t.tRP)
                    << "ACT before tRP expired on channel " << c.channel
                    << " bank " << c.bank;
            }
            for (const auto &w : refs[c.channel]) {
                EXPECT_FALSE(c.tick >= w.first && c.tick < w.second)
                    << "ACT during refresh on channel " << c.channel;
            }
            last_act[key] = c.tick;
            break;
          }
          case Cmd::Pre: {
            auto act = last_act.find(key);
            ASSERT_NE(act, last_act.end())
                << "PRE with no prior ACT on channel " << c.channel
                << " bank " << c.bank;
            EXPECT_GE(c.tick, act->second + t.tRAS)
                << "PRE before tRAS on channel " << c.channel << " bank "
                << c.bank;
            last_pre[key] = c.tick;
            break;
          }
          case Cmd::Rd: {
            auto act = last_act.find(key);
            if (act != last_act.end()) {
                EXPECT_GE(c.tick, act->second + t.tRCD)
                    << "RD before tRCD on channel " << c.channel
                    << " bank " << c.bank;
            }
            break;
          }
          case Cmd::Ref:
            refs[c.channel].emplace_back(c.tick, c.tick + t.tRFC);
            break;
        }
    }
}

TEST_F(DramBackendTest, ProtocolInvariantsUnderRandomTraffic)
{
    for (const std::string &name : dramPresetNames()) {
        auto dram = makeTiming(name);
        const DramConfig &cfg = dram->config();
        std::vector<CommandRecord> log;
        dram->setCommandLog(&log);

        // Deterministic LCG traffic: mixed classes, all channels,
        // enough rows and banks to exercise PRE/ACT chains, run past
        // two refresh intervals.
        uint64_t lcg = 0x2545F4914F6CDD1Dull;
        const Tick horizon = Tick{2} * dram->timing().tREFI + 4000;
        std::vector<MemRequest> fills;
        for (Tick now = 0; now <= horizon; ++now) {
            lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
            if ((lcg >> 60) < 3) { // ~3/16 of cycles offer a request.
                const unsigned ch = (lcg >> 32) & (cfg.channels - 1);
                if (dram->canAccept(ch, now)) {
                    const unsigned bank =
                        (lcg >> 40) & (cfg.banksPerChannel - 1);
                    const uint64_t row = (lcg >> 48) & 7;
                    const ReqClass cls =
                        ((lcg >> 56) & 3) == 0 ? ReqClass::Demand
                                               : ReqClass::Prefetch;
                    dram->serve(makeAddr(cfg, ch, bank, row), now, cls);
                }
            }
            dram->tick(now);
            while (auto req = dram->popCompleted(now))
                fills.push_back(*req);
        }

        EXPECT_GT(dram->stats().value("transfers"), 100u) << name;
        checkProtocol(log, dram->timing(), cfg.channels);

        // Refresh fired under continuous traffic: at least one owed
        // interval per elapsed tREFI per active channel, visible both
        // in the command log and the counter.
        const uint64_t refreshes = dram->stats().value("refreshes");
        EXPECT_GE(refreshes, uint64_t(cfg.channels)) << name;
        const auto is_ref = [](const CommandRecord &c) {
            return c.cmd == Cmd::Ref;
        };
        EXPECT_EQ(uint64_t(std::count_if(log.begin(), log.end(), is_ref)),
                  refreshes)
            << name;
    }
}

TEST_F(DramBackendTest, DemandOvertakesQueuedPrefetches)
{
    auto dram = makeTiming("ddr4-2400");
    const DramConfig &cfg = dram->config();
    std::vector<CommandRecord> log;
    dram->setCommandLog(&log);

    // Three prefetches queue at t=0 on channel 0 (distinct banks and
    // rows so each is identifiable in the command stream)...
    for (unsigned i = 0; i < 3; ++i) {
        dram->serve(makeAddr(cfg, 0, i, i + 1), 0, ReqClass::Prefetch,
                    kInvalidRefId, obs::HintClass::Spatial);
    }
    dram->tick(0); // Schedules exactly one of them.

    // ...then a demand arrives late.
    const Addr demand_addr = makeAddr(cfg, 0, 3, 7);
    dram->serve(demand_addr, 1, ReqClass::Demand);

    std::vector<MemRequest> fills;
    run(*dram, 1, 5000, &fills);
    ASSERT_EQ(fills.size(), 4u);

    // The demand is scheduled ahead of both still-queued prefetches:
    // its RD is the second column command issued...
    std::vector<int64_t> rd_rows;
    for (const CommandRecord &c : log) {
        if (c.cmd == Cmd::Rd)
            rd_rows.push_back(c.row);
    }
    ASSERT_GE(rd_rows.size(), 4u);
    EXPECT_EQ(rd_rows[1], 7);

    // ...and its fill is delivered second, demand class intact.
    EXPECT_EQ(fills[1].blockAddr, demand_addr);
    EXPECT_EQ(fills[1].cls, ReqClass::Demand);
    EXPECT_EQ(fills[0].cls, ReqClass::Prefetch);
}

TEST_F(DramBackendTest, RowHitsOutrankConflictsWithinAClass)
{
    auto dram = makeTiming("ddr4-2400");
    const DramConfig &cfg = dram->config();

    // Open row 1 on bank 0 and drain.
    dram->serve(makeAddr(cfg, 0, 0, 1), 0, ReqClass::Prefetch);
    std::vector<MemRequest> fills;
    run(*dram, 0, 2000, &fills);
    ASSERT_EQ(fills.size(), 1u);
    EXPECT_TRUE(dram->rowOpen(makeAddr(cfg, 0, 0, 1)));

    // A conflicting prefetch queues first, then a row hit.
    const Addr conflict = makeAddr(cfg, 0, 0, 2);
    const Addr hit = makeAddr(cfg, 0, 0, 1, 1);
    dram->serve(conflict, 2001, ReqClass::Prefetch);
    dram->serve(hit, 2001, ReqClass::Prefetch);
    fills.clear();
    run(*dram, 2001, 7000, &fills);
    ASSERT_EQ(fills.size(), 2u);
    // FR-FCFS schedules the open-row hit first despite arrival order.
    EXPECT_EQ(fills[0].blockAddr, hit);
    EXPECT_EQ(fills[1].blockAddr, conflict);
    EXPECT_EQ(dram->stats().value("rowHits"), 1u);
    EXPECT_EQ(dram->stats().value("rowConflicts"), 2u);
}

// ---------------------------------------------------------------------
// Stat schema and accounting identities.
// ---------------------------------------------------------------------

TEST_F(DramBackendTest, LegacySchemaIsSubsetOfTimingSchema)
{
    DramConfig cfg;
    DramSystem legacy(cfg);
    auto timing = makeTiming("ddr4-2400");
    // Same geometry by construction (both 4 channels here); every
    // stat the legacy model exposes must exist under the timing model
    // so downstream consumers (cost reports, the adaptive
    // controller's idle signal, bench extractors) need no schema
    // switch.
    ASSERT_EQ(cfg.channels, timing->config().channels);
    const auto &timing_counters = timing->stats().counters();
    for (const auto &entry : legacy.stats().counters()) {
        EXPECT_EQ(timing_counters.count(entry.first), 1u)
            << "legacy stat " << entry.first
            << " missing from the timing backend";
    }
}

TEST_F(DramBackendTest, PerBankStateCyclesSumToChannelCycles)
{
    SimConfig config;
    config.dram.backend = "ddr4-2400";
    EventQueue events;
    MemorySystem mem(config, events);
    std::vector<uint64_t> completed;
    mem.setLoadCallback(
        [&completed](uint64_t token) { completed.push_back(token); });

    // A strided demand stream long enough to cross rows and banks.
    uint64_t token = 1;
    Addr addr = 0x10000;
    for (Tick t = 0; t <= 20000; ++t) {
        events.advanceTo(t);
        if (t % 40 == 0) {
            if (mem.load(addr, 0, {}, token)) {
                ++token;
                addr += 3 * kBlockBytes + kBlockBytes * 64;
            }
        }
        mem.tick();
    }
    EXPECT_GT(completed.size(), 100u);

    const StatGroup &stats = mem.dram().stats();
    const DramConfig &cfg = mem.dram().config();
    static const char *kStates[5] = {
        "Idle", "Open", "Activating", "Precharging", "Refreshing",
    };
    for (unsigned ch = 0; ch < cfg.channels; ++ch) {
        const uint64_t total =
            stats.value("ch" + std::to_string(ch) + "Cycles");
        EXPECT_GT(total, 0u);
        for (unsigned b = 0; b < cfg.banksPerChannel; ++b) {
            uint64_t sum = 0;
            for (const char *state : kStates) {
                sum += stats.value("ch" + std::to_string(ch) + "bank" +
                                   std::to_string(b) + state + "Cycles");
            }
            EXPECT_EQ(sum, total) << "channel " << ch << " bank " << b;
        }
    }
}

TEST_F(DramBackendTest, TimingRunsAreDeterministic)
{
    const auto run_once = [](uint64_t *hash) {
        SimConfig config;
        config.dram.backend = "hbm2";
        EventQueue events;
        MemorySystem mem(config, events);
        mem.setLoadCallback([](uint64_t) {});
        Addr addr = 0x40000;
        uint64_t token = 1;
        for (Tick t = 0; t <= 8000; ++t) {
            events.advanceTo(t);
            if (t % 17 == 0 && mem.load(addr, 0, {}, token)) {
                ++token;
                addr += 5 * kBlockBytes;
            }
            mem.tick();
        }
        uint64_t h = 1469598103934665603ull;
        for (const auto &entry : mem.dram().stats().counters()) {
            h = (h ^ entry.second.value()) * 1099511628211ull;
        }
        *hash = h;
    };
    uint64_t first = 0;
    uint64_t second = 0;
    run_once(&first);
    run_once(&second);
    EXPECT_EQ(first, second);
}

} // namespace
} // namespace grp
