/** @file Unit tests for the heap data-structure builders. */

#include <gtest/gtest.h>

#include <set>

#include "sim/logging.hh"
#include "workloads/heap_builders.hh"

namespace grp
{
namespace
{

class HeapBuildersTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    FunctionalMemory mem;
    Rng rng{7};
};

TEST_F(HeapBuildersTest, SequentialListLinksInOrder)
{
    BuiltList list = buildLinkedList(mem, 64, 8, 16, 0.0, rng);
    EXPECT_EQ(list.nodes.size(), 16u);
    EXPECT_EQ(list.head, list.nodes[0]);
    for (size_t i = 0; i + 1 < list.nodes.size(); ++i) {
        EXPECT_EQ(mem.read64(list.nodes[i] + 8), list.nodes[i + 1]);
        // Allocation-order layout: next node is adjacent.
        EXPECT_EQ(list.nodes[i + 1], list.nodes[i] + 64);
    }
    EXPECT_EQ(mem.read64(list.nodes.back() + 8), 0u);
}

TEST_F(HeapBuildersTest, ListWalkTerminatesAndCoversAllNodes)
{
    BuiltList list = buildLinkedList(mem, 64, 16, 256, 0.8, rng);
    std::set<Addr> seen;
    Addr node = list.head;
    while (node != 0) {
        EXPECT_TRUE(seen.insert(node).second) << "cycle!";
        node = mem.read64(node + 16);
    }
    EXPECT_EQ(seen.size(), 256u);
}

TEST_F(HeapBuildersTest, ShuffledListIsNotAllocationOrder)
{
    BuiltList list = buildLinkedList(mem, 64, 8, 512, 0.9, rng);
    unsigned adjacent = 0;
    for (size_t i = 0; i + 1 < list.nodes.size(); ++i)
        adjacent += list.nodes[i + 1] == list.nodes[i] + 64;
    EXPECT_LT(adjacent, 300u);
}

TEST_F(HeapBuildersTest, TreeChildrenAreWired)
{
    BuiltTree tree = buildTree(mem, 96, {8, 16}, 31, 0.0, rng);
    EXPECT_EQ(tree.nodes.size(), 31u);
    EXPECT_EQ(tree.root, tree.nodes[0]);
    // Complete binary tree in BFS order.
    for (size_t i = 0; i < 15; ++i) {
        EXPECT_EQ(mem.read64(tree.nodes[i] + 8),
                  tree.nodes[2 * i + 1]);
        EXPECT_EQ(mem.read64(tree.nodes[i] + 16),
                  tree.nodes[2 * i + 2]);
    }
    // Leaves have null children.
    for (size_t i = 15; i < 31; ++i) {
        EXPECT_EQ(mem.read64(tree.nodes[i] + 8), 0u);
        EXPECT_EQ(mem.read64(tree.nodes[i] + 16), 0u);
    }
}

TEST_F(HeapBuildersTest, TreeDescentsTerminate)
{
    BuiltTree tree = buildTree(mem, 96, {8, 16}, 1024, 0.7, rng);
    for (int trial = 0; trial < 64; ++trial) {
        Addr node = tree.root;
        unsigned depth = 0;
        while (node != 0 && depth < 64) {
            node = mem.read64(node + (rng.chance(0.5) ? 8 : 16));
            ++depth;
        }
        EXPECT_LT(depth, 64u) << "descent did not terminate";
    }
}

TEST_F(HeapBuildersTest, PointerRowsArePointers)
{
    const Addr array = mem.heapAlloc(8 * 32, 64);
    auto rows = buildPointerRows(mem, array, 32, 512);
    EXPECT_EQ(rows.size(), 32u);
    for (unsigned i = 0; i < 32; ++i) {
        const Addr stored = mem.read64(array + 8 * i);
        EXPECT_EQ(stored, rows[i]);
        EXPECT_TRUE(mem.looksLikeHeapPointer(stored));
        EXPECT_EQ(stored % kBlockBytes, 0u);
    }
}

TEST_F(HeapBuildersTest, ShuffledRowsBreakStridePatterns)
{
    const Addr array = mem.heapAlloc(8 * 256, 64);
    Rng shuffle(3);
    auto rows = buildPointerRows(mem, array, 256, 512, &shuffle);
    // The set of rows is intact...
    std::set<Addr> unique(rows.begin(), rows.end());
    EXPECT_EQ(unique.size(), 256u);
    // ...but consecutive entries are rarely adjacent in memory.
    unsigned adjacent = 0;
    for (size_t i = 0; i + 1 < rows.size(); ++i)
        adjacent += rows[i + 1] == rows[i] + 512;
    EXPECT_LT(adjacent, 32u);
}

TEST_F(HeapBuildersTest, IndexArrayRandomValuesInRange)
{
    const Addr base = mem.heapAlloc(4 * 1024, 64);
    fillIndexArray(mem, base, 1024, 5000, 1, rng);
    for (unsigned i = 0; i < 1024; ++i)
        EXPECT_LT(mem.read32(base + 4 * i), 5000u);
}

TEST_F(HeapBuildersTest, IndexArrayClustersRun)
{
    const Addr base = mem.heapAlloc(4 * 1024, 64);
    fillIndexArray(mem, base, 1024, 1 << 20, 16, rng);
    unsigned sequential = 0;
    for (unsigned i = 1; i < 1024; ++i) {
        sequential += mem.read32(base + 4 * i) ==
                      mem.read32(base + 4 * (i - 1)) + 1;
    }
    // 15 of every 16 transitions continue a run.
    EXPECT_GT(sequential, 900u);
}

TEST_F(HeapBuildersTest, EmptyStructuresAreFatal)
{
    EXPECT_THROW(buildLinkedList(mem, 64, 8, 0, 0.0, rng),
                 std::runtime_error);
    EXPECT_THROW(buildTree(mem, 96, {}, 8, 0.0, rng),
                 std::runtime_error);
    EXPECT_THROW(fillIndexArray(mem, 0x1000, 4, 0, 1, rng),
                 std::runtime_error);
}

} // namespace
} // namespace grp
