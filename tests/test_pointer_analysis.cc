/** @file Unit tests for pointer/recursive hint generation (Fig 8). */

#include <gtest/gtest.h>

#include "compiler/builder.hh"
#include "compiler/hint_generator.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

class PointerAnalysisTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }

    HintTable
    analyse(Program &prog)
    {
        HintTable table;
        HintGenerator generator(CompilerPolicy::Default, 1 << 20);
        generator.run(prog, table);
        return table;
    }

    FunctionalMemory mem;
};

TEST_F(PointerAnalysisTest, Figure6RecursiveListWalk)
{
    // while (...) { ...a->f...; a = a->next; }
    ProgramBuilder b(mem);
    const TypeId t = b.structType(
        "t", 64, {{"f", 0, false, kNoId}, {"next", 8, true, 0}});
    const PtrId a = b.ptr("a", t, mem.heapAlloc(64));
    b.whileLoop(a, 10);
    const RefId field = b.ptrRef(a, 0);
    const RefId walk = b.ptrUpdateField(a, 8);
    b.end();
    Program prog = b.build();
    HintTable table = analyse(prog);

    // The walk updates a recurrent pointer: recursive (and pointer).
    EXPECT_TRUE(table.get(walk).recursive());
    EXPECT_TRUE(table.get(walk).pointer());
    // The sibling field access touches a structure whose pointer
    // field is accessed in the same loop: pointer hint.
    EXPECT_TRUE(table.get(field).pointer());
    EXPECT_FALSE(table.get(field).recursive());
}

TEST_F(PointerAnalysisTest, TreeDescentThroughSelectIsRecursive)
{
    ProgramBuilder b(mem);
    const TypeId t = b.structType(
        "node", 64,
        {{"key", 0, false, kNoId},
         {"left", 8, true, 0},
         {"right", 16, true, 0}});
    const PtrId n = b.ptr("n", t, mem.heapAlloc(64));
    b.whileLoop(n, 10);
    const RefId descend = b.ptrSelectField(n, n, {8, 16});
    b.end();
    Program prog = b.build();
    HintTable table = analyse(prog);
    EXPECT_TRUE(table.get(descend).recursive());
}

TEST_F(PointerAnalysisTest, NonRecurrentPointerFieldIsPointerOnly)
{
    // A structure's pointer field points to a *different* type:
    // pointer hint without recursion (the ammp shape).
    ProgramBuilder b(mem);
    const TypeId other = b.structType("other", 64, {});
    const TypeId t = b.structType(
        "t", 64, {{"val", 0, false, kNoId}, {"buddy", 8, true, other}});
    const PtrId a = b.ptr("a", t, mem.heapAlloc(64));
    const PtrId buddy = b.ptr("buddy", t);
    b.forLoop(0, 10);
    const RefId val = b.ptrRef(a, 0);
    const RefId follow = b.ptrSelectField(buddy, a, {8});
    b.end();
    Program prog = b.build();
    HintTable table = analyse(prog);
    EXPECT_TRUE(table.get(val).pointer());
    EXPECT_TRUE(table.get(follow).pointer());
    EXPECT_FALSE(table.get(follow).recursive());
}

TEST_F(PointerAnalysisTest, NoPointerHintWithoutPointerFieldAccess)
{
    // Only scalar fields accessed: no pointer hint, even though the
    // type declares a pointer field somewhere.
    ProgramBuilder b(mem);
    const TypeId t = b.structType(
        "t", 64, {{"x", 0, false, kNoId}, {"next", 8, true, 0}});
    const PtrId a = b.ptr("a", t, mem.heapAlloc(64));
    b.forLoop(0, 10);
    const RefId x_ref = b.ptrRef(a, 0);
    b.end();
    Program prog = b.build();
    HintTable table = analyse(prog);
    EXPECT_FALSE(table.get(x_ref).pointer());
}

TEST_F(PointerAnalysisTest, SameLoopScopeIsRequired)
{
    // Pointer field accessed in a *different* loop: the scalar loop
    // gets no pointer hints.
    ProgramBuilder b(mem);
    const TypeId t = b.structType(
        "t", 64, {{"x", 0, false, kNoId}, {"next", 8, true, 0}});
    const PtrId a = b.ptr("a", t, mem.heapAlloc(64));
    b.forLoop(0, 10);
    const RefId scalar_only = b.ptrRef(a, 0);
    b.end();
    b.whileLoop(a, 4);
    b.ptrUpdateField(a, 8);
    b.end();
    Program prog = b.build();
    HintTable table = analyse(prog);
    EXPECT_FALSE(table.get(scalar_only).pointer());
}

TEST_F(PointerAnalysisTest, SpatialHeapPointerArrayGetsPointerHint)
{
    // Figure 4 / §4.5: buf[i] marked spatial over a heap array of
    // pointers also gets the pointer hint, so GRP prefetches the
    // pointed-to rows.
    ProgramBuilder b(mem);
    ArrayOpts opts;
    opts.heap = true;
    opts.elemIsPointer = true;
    const ArrayId buf = b.array("buf", 8, {64}, opts);
    const PtrId row = b.ptr("row");
    const VarId i = b.forLoop(0, 64);
    const RefId load =
        b.ptrLoadFromArray(row, buf, Subscript::affine(Affine::var(i)));
    b.end();
    Program prog = b.build();
    HintTable table = analyse(prog);
    EXPECT_TRUE(table.get(load).spatial());
    EXPECT_TRUE(table.get(load).pointer());
}

TEST_F(PointerAnalysisTest, StaticArrayOfPointersGetsNoPointerHint)
{
    // Not a heap array: the §4.5 rule does not apply.
    ProgramBuilder b(mem);
    ArrayOpts opts;
    opts.elemIsPointer = true; // But not heap.
    const ArrayId buf = b.array("buf", 8, {64}, opts);
    const PtrId row = b.ptr("row");
    const VarId i = b.forLoop(0, 64);
    const RefId load =
        b.ptrLoadFromArray(row, buf, Subscript::affine(Affine::var(i)));
    b.end();
    Program prog = b.build();
    HintTable table = analyse(prog);
    EXPECT_TRUE(table.get(load).spatial());
    EXPECT_FALSE(table.get(load).pointer());
}

TEST_F(PointerAnalysisTest, UntypedPointersAreIgnored)
{
    ProgramBuilder b(mem);
    const PtrId p = b.ptr("p", kNoId, mem.heapAlloc(64));
    b.forLoop(0, 4);
    const RefId ref = b.ptrRef(p, 0);
    b.end();
    Program prog = b.build();
    HintTable table = analyse(prog);
    EXPECT_FALSE(table.get(ref).pointer());
}

} // namespace
} // namespace grp
