/** @file Tests for the offline trace tooling: JSONL parsing round
 *  trip, the lifecycle invariant checker (consistent traces pass,
 *  each corruption class is caught), the offline funnel recompute,
 *  and the Chrome trace_event export. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/chrome_trace.hh"
#include "obs/json_reader.hh"
#include "obs/trace_reader.hh"

namespace grp
{
namespace
{

using obs::HintClass;
using obs::TraceEvent;
using obs::TraceLine;

TraceLine
make(TraceEvent event, Addr addr, HintClass hint = HintClass::Spatial,
     Tick t = 0, int64_t extra = -1, bool warm = false,
     bool carry = false, int64_t site = -1)
{
    TraceLine line;
    line.t = t;
    line.event = event;
    line.addr = addr;
    line.hint = hint;
    line.extra = extra;
    line.warm = warm;
    line.carry = carry;
    line.site = site;
    return line;
}

TEST(TraceReader, ParsesWriterOutput)
{
    std::istringstream in(
        "{\"t\":5,\"ev\":\"issue\",\"addr\":4096,\"hint\":\"spatial\","
        "\"ch\":2,\"x\":1,\"site\":9}\n"
        "\n"
        "{\"t\":9,\"ev\":\"fill\",\"addr\":4096,\"hint\":\"spatial\","
        "\"warm\":true,\"carry\":true}\n");
    const obs::TraceParseResult parsed = obs::readTrace(in);
    EXPECT_TRUE(parsed.errors.empty());
    ASSERT_EQ(parsed.lines.size(), 2u);
    const TraceLine &issue = parsed.lines[0];
    EXPECT_EQ(issue.t, 5u);
    EXPECT_EQ(issue.event, TraceEvent::Issue);
    EXPECT_EQ(issue.addr, 4096u);
    EXPECT_EQ(issue.hint, HintClass::Spatial);
    EXPECT_EQ(issue.channel, 2);
    EXPECT_EQ(issue.extra, 1);
    EXPECT_EQ(issue.site, 9);
    EXPECT_FALSE(issue.warm);
    const TraceLine &fill = parsed.lines[1];
    EXPECT_EQ(fill.event, TraceEvent::Fill);
    EXPECT_EQ(fill.site, -1);
    EXPECT_TRUE(fill.warm);
    EXPECT_TRUE(fill.carry);
}

TEST(TraceReader, ReportsMalformedLinesWithoutAborting)
{
    std::istringstream in(
        "{\"t\":1,\"ev\":\"issue\",\"addr\":64}\n"
        "not json at all\n"
        "{\"t\":2}\n"
        "{\"t\":3,\"ev\":\"warp\"}\n"
        "{\"t\":4,\"ev\":\"fill\",\"addr\":64}\n");
    const obs::TraceParseResult parsed = obs::readTrace(in);
    EXPECT_EQ(parsed.lines.size(), 2u);
    ASSERT_EQ(parsed.errors.size(), 3u);
    EXPECT_NE(parsed.errors[0].find("line 2"), std::string::npos);
    EXPECT_NE(parsed.errors[1].find("line 3"), std::string::npos);
    EXPECT_NE(parsed.errors[2].find("warp"), std::string::npos);
}

TEST(TraceReader, ParseEventAndHintAreInversesOfToString)
{
    EXPECT_EQ(obs::parseTraceEvent("evictedUnused"),
              TraceEvent::EvictedUnused);
    EXPECT_EQ(obs::parseHintClass("recursive"), HintClass::Recursive);
    EXPECT_FALSE(obs::parseTraceEvent("bogus"));
    EXPECT_FALSE(obs::parseHintClass("bogus"));
}

TEST(TraceAnalysis, ConsistentLifecyclePasses)
{
    std::vector<TraceLine> lines;
    // Full arc with an enqueue covering the issue.
    lines.push_back(make(TraceEvent::Enqueue, 4096, HintClass::Spatial,
                         1, 8));
    lines.push_back(make(TraceEvent::Issue, 4096 + 128));
    lines.push_back(make(TraceEvent::Fill, 4096 + 128,
                         HintClass::Spatial, 40));
    lines.push_back(make(TraceEvent::FirstUse, 4096 + 128,
                         HintClass::Spatial, 55, 15));
    // Arc ending in eviction.
    lines.push_back(make(TraceEvent::Issue, 4096 + 192));
    lines.push_back(make(TraceEvent::Fill, 4096 + 192));
    lines.push_back(make(TraceEvent::EvictedUnused, 4096 + 192));
    // Stream-buffer fill: no issue, and exempt from coverage.
    lines.push_back(make(TraceEvent::Fill, 1 << 20,
                         HintClass::Stride));
    lines.push_back(make(TraceEvent::FirstUse, 1 << 20,
                         HintClass::Stride));
    // Carryover use of a pre-trace fill.
    TraceLine carry = make(TraceEvent::FirstUse, 1 << 21,
                           HintClass::None, 60, 0, false, true);
    lines.push_back(carry);
    // Re-prefetch of an address whose arc completed.
    lines.push_back(make(TraceEvent::Issue, 4096 + 128));

    const obs::TraceAnalysis a = obs::analyzeTrace(lines);
    EXPECT_TRUE(a.violations.empty())
        << a.violations.front().message;
    EXPECT_TRUE(a.coverageChecked);
    EXPECT_EQ(a.inFlightAtEnd, 1u);
    EXPECT_EQ(a.liveAtEnd, 0u);

    const obs::FunnelStats &spatial =
        a.byClass.at(HintClass::Spatial);
    EXPECT_EQ(spatial.enqueued, 8u);
    EXPECT_EQ(spatial.issued, 3u);
    EXPECT_EQ(spatial.fills, 2u);
    EXPECT_EQ(spatial.useful, 1u);
    EXPECT_EQ(spatial.evictedUnused, 1u);
    EXPECT_EQ(spatial.fillToUse.sum(), 15u);
    const obs::FunnelStats &none = a.byClass.at(HintClass::None);
    EXPECT_EQ(none.warmUseful, 1u);
    EXPECT_EQ(none.useful, 0u);
}

TEST(TraceAnalysis, CatchesEachCorruptionClass)
{
    auto violations = [](std::vector<TraceLine> lines) {
        return obs::analyzeTrace(lines).violations.size();
    };

    // Fill without an issue (non-stride).
    EXPECT_EQ(violations({make(TraceEvent::Fill, 64)}), 1u);
    // Use without a fill.
    EXPECT_EQ(violations({make(TraceEvent::FirstUse, 64)}), 1u);
    // Use while still in flight.
    EXPECT_EQ(violations({make(TraceEvent::Issue, 64),
                          make(TraceEvent::FirstUse, 64)}),
              1u);
    // Eviction without a fill.
    EXPECT_EQ(violations({make(TraceEvent::EvictedUnused, 64)}), 1u);
    // Double issue.
    EXPECT_EQ(violations({make(TraceEvent::Issue, 64),
                          make(TraceEvent::Issue, 64)}),
              1u);
    // Double fill.
    EXPECT_EQ(violations({make(TraceEvent::Issue, 64),
                          make(TraceEvent::Fill, 64),
                          make(TraceEvent::Fill, 64)}),
              1u);
    // Issue outside every enqueued window (coverage active only
    // once an enqueue appears).
    EXPECT_EQ(violations({make(TraceEvent::Enqueue, 4096,
                               HintClass::Spatial, 0, 4),
                          make(TraceEvent::Issue, 1 << 20)}),
              1u);
    EXPECT_EQ(violations({make(TraceEvent::Issue, 1 << 20)}), 0u);
}

TEST(ChromeTrace, EmitsBalancedSpansAndCounters)
{
    std::vector<TraceLine> lines;
    lines.push_back(make(TraceEvent::Issue, 4096, HintClass::Pointer,
                         10, 1, false, false, 3));
    lines.push_back(make(TraceEvent::Fill, 4096, HintClass::Pointer,
                         60));
    lines.push_back(make(TraceEvent::FirstUse, 4096,
                         HintClass::Pointer, 90, 30));
    lines.push_back(make(TraceEvent::Drop, 8192, HintClass::Spatial,
                         95, 6));
    lines.push_back(make(TraceEvent::Fill, 1 << 20,
                         HintClass::Stride, 100));
    lines.push_back(make(TraceEvent::EvictedUnused, 1 << 20,
                         HintClass::Stride, 140));

    const std::string timeseries_text =
        "{\"schema\":\"grp-timeseries-v1\",\"bucket\":64,"
        "\"series\":{\"depth\":{\"t\":[0,64],\"v\":[2,4]}}}";
    std::string error;
    auto timeseries = obs::parseJson(timeseries_text, &error);
    ASSERT_TRUE(timeseries) << error;

    std::ostringstream os;
    obs::writeChromeTrace(os, lines, timeseries.get());
    auto doc = obs::parseJson(os.str(), &error);
    ASSERT_TRUE(doc) << error;
    const obs::JsonValue *events = doc->find("traceEvents");
    ASSERT_TRUE(events && events->isArray());

    size_t begins = 0, ends = 0, counters = 0, instants = 0;
    size_t metadata = 0;
    for (const obs::JsonValue &event : events->asArray()) {
        ASSERT_TRUE(event.isObject());
        const std::string ph = event.find("ph")->asString();
        if (ph == "b") {
            ++begins;
            // Async events carry the span id and category.
            EXPECT_TRUE(event.find("id"));
            EXPECT_EQ(event.find("cat")->asString(), "prefetch");
        } else if (ph == "e") {
            ++ends;
        } else if (ph == "C") {
            ++counters;
        } else if (ph == "i") {
            ++instants;
        } else if (ph == "M") {
            ++metadata;
        }
    }
    // Two arcs: pointer (issue-open) and stride (fill-open).
    EXPECT_EQ(begins, 2u);
    EXPECT_EQ(ends, 2u);
    EXPECT_EQ(counters, 2u);  // Two time-series samples.
    EXPECT_EQ(instants, 1u);  // The drop.
    EXPECT_GE(metadata, 2u);  // Process + thread names.

    // Span begin/end pair on the same id.
    std::string open_id, close_id;
    for (const obs::JsonValue &event : events->asArray()) {
        const std::string ph = event.find("ph")->asString();
        const obs::JsonValue *name = event.find("name");
        if (ph == "b" && name->asString() == "pointer")
            open_id = event.find("id")->asString();
        if (ph == "e" && name->asString() == "pointer")
            close_id = event.find("id")->asString();
    }
    EXPECT_FALSE(open_id.empty());
    EXPECT_EQ(open_id, close_id);
}

TEST(ChromeTrace, ReprefetchedBlockGetsFreshSpanId)
{
    std::vector<TraceLine> lines;
    lines.push_back(make(TraceEvent::Issue, 64, HintClass::Spatial, 0));
    lines.push_back(make(TraceEvent::Fill, 64, HintClass::Spatial, 5));
    lines.push_back(make(TraceEvent::FirstUse, 64, HintClass::Spatial,
                         9, 4));
    lines.push_back(make(TraceEvent::Issue, 64, HintClass::Spatial,
                         20));

    std::ostringstream os;
    obs::writeChromeTrace(os, lines);
    std::string error;
    auto doc = obs::parseJson(os.str(), &error);
    ASSERT_TRUE(doc) << error;

    std::vector<std::string> begin_ids;
    for (const obs::JsonValue &event :
         doc->find("traceEvents")->asArray()) {
        if (event.find("ph")->asString() == "b")
            begin_ids.push_back(event.find("id")->asString());
    }
    ASSERT_EQ(begin_ids.size(), 2u);
    EXPECT_NE(begin_ids[0], begin_ids[1]);
}

} // namespace
} // namespace grp
