#include <gtest/gtest.h>
#include "sim/event_queue.hh"
TEST(Smoke, EventQueue) {
    grp::EventQueue q;
    int fired = 0;
    q.schedule(5, [&fired] { ++fired; });
    q.advanceTo(10);
    EXPECT_EQ(fired, 1);
}
