/** @file Unit tests for the SRP/GRP prefetch queue. */

#include <gtest/gtest.h>

#include <deque>
#include <optional>
#include <set>

#include "mem/dram.hh"
#include "prefetch/region_queue.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

class RegionQueueTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }

    /** Drain every candidate for all channels. */
    std::vector<Addr>
    drain(RegionQueue &queue)
    {
        std::vector<Addr> out;
        bool progress = true;
        while (progress) {
            progress = false;
            for (unsigned ch = 0; ch < 4; ++ch) {
                if (auto cand = queue.dequeue(dram, ch)) {
                    out.push_back(cand->blockAddr);
                    progress = true;
                }
            }
        }
        return out;
    }

    DramSystem dram{DramConfig{}};
};

TEST_F(RegionQueueTest, FullRegionExcludesMissBlock)
{
    RegionQueue queue(32, true, false);
    const Addr miss = 0x10000 + 5 * kBlockBytes;
    EXPECT_EQ(queue.noteSpatialMiss(miss, 64, 0, 1), 64u);
    auto blocks = drain(queue);
    EXPECT_EQ(blocks.size(), 63u); // All but the miss block.
    std::set<Addr> unique(blocks.begin(), blocks.end());
    EXPECT_EQ(unique.size(), 63u);
    EXPECT_FALSE(unique.count(blockAlign(miss)));
    for (Addr addr : blocks)
        EXPECT_EQ(regionAlign(addr), regionAlign(miss));
}

TEST_F(RegionQueueTest, PresenceTestFiltersWindow)
{
    RegionQueue queue(32, true, false);
    // Mark even blocks of the region present.
    queue.setPresenceTest([](Addr addr) {
        return (blockNumber(addr) % 2) == 0;
    });
    queue.noteSpatialMiss(0x40000 + kBlockBytes, 64, 0, 0);
    auto blocks = drain(queue);
    // 32 odd blocks minus the miss block (odd).
    EXPECT_EQ(blocks.size(), 31u);
    for (Addr addr : blocks)
        EXPECT_EQ(blockNumber(addr) % 2, 1u);
}

TEST_F(RegionQueueTest, ScanStartsAfterMissAndWraps)
{
    RegionQueue queue(32, true, false);
    const Addr region = 0x20000;
    queue.noteSpatialMiss(region + 60 * kBlockBytes, 64, 0, 0);
    // First candidate on channel of block 61 should be block 61
    // (the next after the miss), not block 0.
    const Addr block61 = region + 61 * kBlockBytes;
    auto cand = queue.dequeue(dram, dram.channelOf(block61));
    ASSERT_TRUE(cand.has_value());
    EXPECT_EQ(cand->blockAddr, block61);
}

TEST_F(RegionQueueTest, SecondMissUpdatesEntry)
{
    RegionQueue queue(32, true, false);
    const Addr region = 0x30000;
    EXPECT_EQ(queue.noteSpatialMiss(region, 64, 0, 0), 64u);
    EXPECT_EQ(queue.size(), 1u);
    // Second miss to the same region: no new allocation...
    EXPECT_EQ(queue.noteSpatialMiss(region + 7 * kBlockBytes, 64, 0,
                                    0),
              0u);
    EXPECT_EQ(queue.size(), 1u);
    // ...and the new miss block is no longer a candidate.
    auto blocks = drain(queue);
    EXPECT_EQ(blocks.size(), 62u);
    for (Addr addr : blocks)
        EXPECT_NE(addr, region + 7 * kBlockBytes);
}

TEST_F(RegionQueueTest, LifoPrefersNewestRegion)
{
    RegionQueue queue(32, true, false);
    queue.noteSpatialMiss(0x100000, 64, 0, 0);
    queue.noteSpatialMiss(0x200000, 64, 0, 0);
    for (unsigned ch = 0; ch < 4; ++ch) {
        auto cand = queue.dequeue(dram, ch);
        ASSERT_TRUE(cand.has_value());
        EXPECT_EQ(regionAlign(cand->blockAddr), 0x200000u);
    }
}

TEST_F(RegionQueueTest, FifoPrefersOldestRegion)
{
    RegionQueue queue(32, /*lifo=*/false, false);
    queue.noteSpatialMiss(0x100000, 64, 0, 0);
    queue.noteSpatialMiss(0x200000, 64, 0, 0);
    auto cand = queue.dequeue(dram, 1);
    ASSERT_TRUE(cand.has_value());
    EXPECT_EQ(regionAlign(cand->blockAddr), 0x100000u);
}

TEST_F(RegionQueueTest, CapacityDropsOldEntries)
{
    RegionQueue queue(2, true, false);
    queue.noteSpatialMiss(0x100000, 64, 0, 0);
    queue.noteSpatialMiss(0x200000, 64, 0, 0);
    queue.noteSpatialMiss(0x300000, 64, 0, 0);
    EXPECT_EQ(queue.size(), 2u);
    EXPECT_EQ(queue.droppedCandidates(), 63u);
    auto blocks = drain(queue);
    for (Addr addr : blocks)
        EXPECT_NE(regionAlign(addr), 0x100000u);
}

TEST_F(RegionQueueTest, VariableWindowIsAlignedAndSmall)
{
    RegionQueue queue(32, true, false);
    // Window of 4 blocks around a miss at block index 6: the aligned
    // window is blocks [4, 8).
    const Addr region = 0x50000;
    EXPECT_EQ(queue.noteSpatialMiss(region + 6 * kBlockBytes, 4, 0,
                                    0),
              4u);
    auto blocks = drain(queue);
    EXPECT_EQ(blocks.size(), 3u);
    for (Addr addr : blocks) {
        EXPECT_GE(addr, region + 4 * kBlockBytes);
        EXPECT_LT(addr, region + 8 * kBlockBytes);
        EXPECT_NE(addr, region + 6 * kBlockBytes);
    }
}

TEST_F(RegionQueueTest, PointerTargetsFetchTwoBlocks)
{
    RegionQueue queue(32, true, false);
    const Addr target = 0x60000 + 24; // Mid-block pointer.
    queue.addPointerTarget(target, 2, 3, 9);
    auto c1 = queue.dequeue(dram, dram.channelOf(blockAlign(target)));
    ASSERT_TRUE(c1.has_value());
    EXPECT_EQ(c1->blockAddr, blockAlign(target));
    EXPECT_EQ(c1->ptrDepth, 3u);
    EXPECT_EQ(c1->refId, 9u);
    auto c2 = queue.dequeue(
        dram, dram.channelOf(blockAlign(target) + kBlockBytes));
    ASSERT_TRUE(c2.has_value());
    EXPECT_EQ(c2->blockAddr, blockAlign(target) + kBlockBytes);
}

TEST_F(RegionQueueTest, PointerTargetMergeDeepensChase)
{
    RegionQueue queue(32, true, false);
    queue.addPointerTarget(0x70000, 2, 1, 0);
    queue.addPointerTarget(0x70000, 2, 5, 0);
    EXPECT_EQ(queue.size(), 1u);
    auto cand = queue.dequeue(dram, dram.channelOf(0x70000));
    ASSERT_TRUE(cand.has_value());
    EXPECT_EQ(cand->ptrDepth, 5u);
}

TEST_F(RegionQueueTest, BankAwarePrefersOpenRows)
{
    RegionQueue queue(32, true, /*bank_aware=*/true);
    DramSystem live(DramConfig{});
    // Open the row containing region B on channel 0.
    const Addr region_b = 0x800000;
    live.serve(region_b, 0);
    // Region A (closed row) is newer -> would win without
    // bank-awareness.
    queue.noteSpatialMiss(region_b, 64, 0, 0);
    queue.noteSpatialMiss(0x400000, 64, 0, 0);
    auto cand = queue.dequeue(live, 0);
    ASSERT_TRUE(cand.has_value());
    EXPECT_EQ(regionAlign(cand->blockAddr),
              regionAlign(region_b));
}

TEST_F(RegionQueueTest, ChannelsAreRespected)
{
    RegionQueue queue(32, true, false);
    queue.noteSpatialMiss(0x90000, 64, 0, 0);
    DramSystem dram_local{DramConfig{}};
    for (unsigned ch = 0; ch < 4; ++ch) {
        for (int i = 0; i < 20; ++i) {
            auto cand = queue.dequeue(dram_local, ch);
            if (!cand)
                break;
            EXPECT_EQ(dram_local.channelOf(cand->blockAddr), ch);
        }
    }
}

TEST_F(RegionQueueTest, EmptyDequeueReturnsNothing)
{
    RegionQueue queue(32, true, true);
    EXPECT_FALSE(queue.dequeue(dram, 0).has_value());
    queue.noteSpatialMiss(0xa0000, 64, 0, 0);
    queue.clear();
    EXPECT_FALSE(queue.dequeue(dram, 0).has_value());
    EXPECT_TRUE(queue.empty());
}

/**
 * Reference implementation of the queue's ordering semantics: the
 * straightforward deque walk the intrusive-list version replaced. A
 * tier pass scans every entry in queue order, filtering by class
 * priority; the production queue merges per-class lists instead and
 * must produce byte-identical dequeue sequences.
 */
class ReferenceQueue
{
  public:
    ReferenceQueue(unsigned capacity, bool lifo, bool bank_aware)
        : capacity_(capacity), lifo_(lifo), bankAware_(bank_aware)
    {
    }

    void setControlPlane(const adaptive::ControlPlane *plane)
    {
        plane_ = plane;
    }

    unsigned
    noteSpatialMiss(Addr miss_addr, unsigned window_blocks,
                    uint8_t ptr_depth, RefId ref, obs::HintClass hint)
    {
        const uint64_t miss_block = blockNumber(miss_addr);
        if (RegionEntry *entry = findCovering(miss_block)) {
            const unsigned pos =
                static_cast<unsigned>(miss_block - entry->baseBlock);
            entry->bitvec &= ~(1ull << pos);
            entry->index = (pos + 1) % entry->numBlocks;
            RegionEntry updated = *entry;
            erase(entry);
            if (updated.bitvec != 0)
                pushFront(updated);
            return 0;
        }
        const uint64_t base =
            miss_block & ~static_cast<uint64_t>(window_blocks - 1);
        RegionEntry entry;
        entry.baseBlock = base;
        entry.numBlocks = window_blocks;
        for (unsigned i = 0; i < window_blocks; ++i) {
            if (base + i != miss_block)
                entry.bitvec |= 1ull << i;
        }
        entry.index = static_cast<unsigned>((miss_block - base + 1) %
                                            window_blocks);
        entry.ptrDepth = ptr_depth;
        entry.refId = ref;
        entry.hintClass = hint;
        if (entry.bitvec != 0)
            pushFront(entry);
        return window_blocks;
    }

    void
    addPointerTarget(Addr target, unsigned blocks, uint8_t ptr_depth,
                     RefId ref, obs::HintClass hint)
    {
        const uint64_t base = blockNumber(target);
        if (RegionEntry *entry = findCovering(base)) {
            if (ptr_depth > entry->ptrDepth)
                entry->ptrDepth = ptr_depth;
            return;
        }
        RegionEntry entry;
        entry.baseBlock = base;
        entry.numBlocks = blocks;
        for (unsigned i = 0; i < blocks; ++i)
            entry.bitvec |= 1ull << i;
        entry.index = 0;
        entry.ptrDepth = ptr_depth;
        entry.refId = ref;
        entry.hintClass = hint;
        pushFront(entry);
    }

    std::optional<PrefetchCandidate>
    dequeue(const DramBackend &dram, unsigned channel)
    {
        if (!plane_)
            return dequeueTier(dram, channel, -1);
        for (int tier = plane_->maxPriority(); tier >= 0; --tier) {
            if (auto candidate = dequeueTier(dram, channel, tier))
                return candidate;
        }
        return std::nullopt;
    }

    size_t size() const { return entries_.size(); }

  private:
    RegionEntry *
    findCovering(uint64_t block_num)
    {
        for (RegionEntry &entry : entries_) {
            if (block_num >= entry.baseBlock &&
                block_num < entry.baseBlock + entry.numBlocks) {
                return &entry;
            }
        }
        return nullptr;
    }

    void
    erase(RegionEntry *entry)
    {
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (&*it == entry) {
                entries_.erase(it);
                return;
            }
        }
    }

    void
    pushFront(RegionEntry entry)
    {
        entries_.push_front(entry);
        while (entries_.size() > capacity_)
            entries_.pop_back();
    }

    std::optional<PrefetchCandidate>
    dequeueTier(const DramBackend &dram, unsigned channel, int tier)
    {
        RegionEntry *fallback_entry = nullptr;
        unsigned fallback_pos = 0;

        auto scan_entry = [&](RegionEntry &entry)
            -> std::optional<unsigned> {
            if (tier >= 0 &&
                plane_->priority(entry.hintClass) != tier) {
                return std::nullopt;
            }
            for (unsigned step = 0; step < entry.numBlocks; ++step) {
                const unsigned pos =
                    (entry.index + step) % entry.numBlocks;
                if (!(entry.bitvec & (1ull << pos)))
                    continue;
                const Addr addr =
                    (entry.baseBlock + pos) << kBlockShift;
                if (dram.channelOf(addr) != channel)
                    continue;
                if (!bankAware_ || dram.rowOpen(addr))
                    return pos;
                if (!fallback_entry) {
                    fallback_entry = &entry;
                    fallback_pos = pos;
                }
            }
            return std::nullopt;
        };

        auto take = [&](RegionEntry &entry, unsigned pos) {
            PrefetchCandidate candidate;
            candidate.blockAddr =
                (entry.baseBlock + pos) << kBlockShift;
            candidate.ptrDepth = entry.ptrDepth;
            candidate.refId = entry.refId;
            candidate.hintClass = entry.hintClass;
            entry.bitvec &= ~(1ull << pos);
            if (entry.bitvec == 0)
                erase(&entry);
            return candidate;
        };

        if (lifo_) {
            for (RegionEntry &entry : entries_) {
                if (auto pos = scan_entry(entry))
                    return take(entry, *pos);
            }
        } else {
            for (auto it = entries_.rbegin(); it != entries_.rend();
                 ++it) {
                if (auto pos = scan_entry(*it))
                    return take(*it, *pos);
            }
        }
        if (fallback_entry)
            return take(*fallback_entry, fallback_pos);
        return std::nullopt;
    }

    std::deque<RegionEntry> entries_;
    unsigned capacity_;
    bool lifo_;
    bool bankAware_;
    const adaptive::ControlPlane *plane_ = nullptr;
};

TEST_F(RegionQueueTest, OrderingMatchesReferenceUnderRandomOps)
{
    const obs::HintClass kClasses[4] = {
        obs::HintClass::Spatial, obs::HintClass::Pointer,
        obs::HintClass::Indirect, obs::HintClass::Stride,
    };
    // Open a few DRAM rows so bank-aware scans have hits to prefer.
    Tick now = 0;
    for (Addr addr = 0; addr < 64 * kBlockBytes; addr += kBlockBytes) {
        dram.serve(addr, now);
        now += 1000;
    }

    for (unsigned variant = 0; variant < 8; ++variant) {
        const bool lifo = variant & 1;
        const bool bank_aware = variant & 2;
        const bool tiered = variant & 4;

        adaptive::ControlPlane plane;
        // Spread classes across three tiers (varies per variant).
        for (std::size_t c = 0; c < adaptive::kNumClasses; ++c) {
            plane.knobs(static_cast<obs::HintClass>(c)).priority =
                static_cast<uint8_t>((c + variant) % 3);
        }

        RegionQueue queue(8, lifo, bank_aware);
        ReferenceQueue ref(8, lifo, bank_aware);
        if (tiered) {
            queue.setControlPlane(&plane);
            ref.setControlPlane(&plane);
        }

        uint64_t lcg = 0x9E3779B97F4A7C15ull * (variant + 1);
        auto next = [&lcg] {
            lcg = lcg * 6364136223846793005ull +
                  1442695040888963407ull;
            return lcg >> 16;
        };

        for (unsigned op = 0; op < 4000; ++op) {
            const uint64_t roll = next();
            const obs::HintClass hint = kClasses[roll % 4];
            const RefId site = static_cast<RefId>(roll % 11);
            switch ((roll >> 8) % 3) {
              case 0: {
                const Addr miss =
                    ((roll >> 16) % 256) * kBlockBytes;
                const unsigned window = 1u << ((roll >> 4) % 4 + 2);
                queue.noteSpatialMiss(miss, window, 0, site, hint);
                ref.noteSpatialMiss(miss, window, 0, site, hint);
                break;
              }
              case 1: {
                const Addr target =
                    ((roll >> 16) % 256) * kBlockBytes;
                queue.addPointerTarget(target, 2, (roll >> 6) % 3,
                                       site, hint);
                ref.addPointerTarget(target, 2, (roll >> 6) % 3,
                                     site, hint);
                break;
              }
              case 2: {
                const unsigned channel = (roll >> 16) % 4;
                const auto got = queue.dequeue(dram, channel);
                const auto want = ref.dequeue(dram, channel);
                ASSERT_EQ(got.has_value(), want.has_value())
                    << "variant " << variant << " op " << op;
                if (got) {
                    EXPECT_EQ(got->blockAddr, want->blockAddr)
                        << "variant " << variant << " op " << op;
                    EXPECT_EQ(got->refId, want->refId);
                    EXPECT_EQ(got->ptrDepth, want->ptrDepth);
                    EXPECT_EQ(got->hintClass, want->hintClass);
                }
                break;
              }
            }
            ASSERT_EQ(queue.size(), ref.size())
                << "variant " << variant << " op " << op;
        }
    }
}

} // namespace
} // namespace grp
