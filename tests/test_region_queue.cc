/** @file Unit tests for the SRP/GRP prefetch queue. */

#include <gtest/gtest.h>

#include <set>

#include "mem/dram.hh"
#include "prefetch/region_queue.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

class RegionQueueTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }

    /** Drain every candidate for all channels. */
    std::vector<Addr>
    drain(RegionQueue &queue)
    {
        std::vector<Addr> out;
        bool progress = true;
        while (progress) {
            progress = false;
            for (unsigned ch = 0; ch < 4; ++ch) {
                if (auto cand = queue.dequeue(dram, ch)) {
                    out.push_back(cand->blockAddr);
                    progress = true;
                }
            }
        }
        return out;
    }

    DramSystem dram{DramConfig{}};
};

TEST_F(RegionQueueTest, FullRegionExcludesMissBlock)
{
    RegionQueue queue(32, true, false);
    const Addr miss = 0x10000 + 5 * kBlockBytes;
    EXPECT_EQ(queue.noteSpatialMiss(miss, 64, 0, 1), 64u);
    auto blocks = drain(queue);
    EXPECT_EQ(blocks.size(), 63u); // All but the miss block.
    std::set<Addr> unique(blocks.begin(), blocks.end());
    EXPECT_EQ(unique.size(), 63u);
    EXPECT_FALSE(unique.count(blockAlign(miss)));
    for (Addr addr : blocks)
        EXPECT_EQ(regionAlign(addr), regionAlign(miss));
}

TEST_F(RegionQueueTest, PresenceTestFiltersWindow)
{
    RegionQueue queue(32, true, false);
    // Mark even blocks of the region present.
    queue.setPresenceTest([](Addr addr) {
        return (blockNumber(addr) % 2) == 0;
    });
    queue.noteSpatialMiss(0x40000 + kBlockBytes, 64, 0, 0);
    auto blocks = drain(queue);
    // 32 odd blocks minus the miss block (odd).
    EXPECT_EQ(blocks.size(), 31u);
    for (Addr addr : blocks)
        EXPECT_EQ(blockNumber(addr) % 2, 1u);
}

TEST_F(RegionQueueTest, ScanStartsAfterMissAndWraps)
{
    RegionQueue queue(32, true, false);
    const Addr region = 0x20000;
    queue.noteSpatialMiss(region + 60 * kBlockBytes, 64, 0, 0);
    // First candidate on channel of block 61 should be block 61
    // (the next after the miss), not block 0.
    const Addr block61 = region + 61 * kBlockBytes;
    auto cand = queue.dequeue(dram, dram.channelOf(block61));
    ASSERT_TRUE(cand.has_value());
    EXPECT_EQ(cand->blockAddr, block61);
}

TEST_F(RegionQueueTest, SecondMissUpdatesEntry)
{
    RegionQueue queue(32, true, false);
    const Addr region = 0x30000;
    EXPECT_EQ(queue.noteSpatialMiss(region, 64, 0, 0), 64u);
    EXPECT_EQ(queue.size(), 1u);
    // Second miss to the same region: no new allocation...
    EXPECT_EQ(queue.noteSpatialMiss(region + 7 * kBlockBytes, 64, 0,
                                    0),
              0u);
    EXPECT_EQ(queue.size(), 1u);
    // ...and the new miss block is no longer a candidate.
    auto blocks = drain(queue);
    EXPECT_EQ(blocks.size(), 62u);
    for (Addr addr : blocks)
        EXPECT_NE(addr, region + 7 * kBlockBytes);
}

TEST_F(RegionQueueTest, LifoPrefersNewestRegion)
{
    RegionQueue queue(32, true, false);
    queue.noteSpatialMiss(0x100000, 64, 0, 0);
    queue.noteSpatialMiss(0x200000, 64, 0, 0);
    for (unsigned ch = 0; ch < 4; ++ch) {
        auto cand = queue.dequeue(dram, ch);
        ASSERT_TRUE(cand.has_value());
        EXPECT_EQ(regionAlign(cand->blockAddr), 0x200000u);
    }
}

TEST_F(RegionQueueTest, FifoPrefersOldestRegion)
{
    RegionQueue queue(32, /*lifo=*/false, false);
    queue.noteSpatialMiss(0x100000, 64, 0, 0);
    queue.noteSpatialMiss(0x200000, 64, 0, 0);
    auto cand = queue.dequeue(dram, 1);
    ASSERT_TRUE(cand.has_value());
    EXPECT_EQ(regionAlign(cand->blockAddr), 0x100000u);
}

TEST_F(RegionQueueTest, CapacityDropsOldEntries)
{
    RegionQueue queue(2, true, false);
    queue.noteSpatialMiss(0x100000, 64, 0, 0);
    queue.noteSpatialMiss(0x200000, 64, 0, 0);
    queue.noteSpatialMiss(0x300000, 64, 0, 0);
    EXPECT_EQ(queue.size(), 2u);
    EXPECT_EQ(queue.droppedCandidates(), 63u);
    auto blocks = drain(queue);
    for (Addr addr : blocks)
        EXPECT_NE(regionAlign(addr), 0x100000u);
}

TEST_F(RegionQueueTest, VariableWindowIsAlignedAndSmall)
{
    RegionQueue queue(32, true, false);
    // Window of 4 blocks around a miss at block index 6: the aligned
    // window is blocks [4, 8).
    const Addr region = 0x50000;
    EXPECT_EQ(queue.noteSpatialMiss(region + 6 * kBlockBytes, 4, 0,
                                    0),
              4u);
    auto blocks = drain(queue);
    EXPECT_EQ(blocks.size(), 3u);
    for (Addr addr : blocks) {
        EXPECT_GE(addr, region + 4 * kBlockBytes);
        EXPECT_LT(addr, region + 8 * kBlockBytes);
        EXPECT_NE(addr, region + 6 * kBlockBytes);
    }
}

TEST_F(RegionQueueTest, PointerTargetsFetchTwoBlocks)
{
    RegionQueue queue(32, true, false);
    const Addr target = 0x60000 + 24; // Mid-block pointer.
    queue.addPointerTarget(target, 2, 3, 9);
    auto c1 = queue.dequeue(dram, dram.channelOf(blockAlign(target)));
    ASSERT_TRUE(c1.has_value());
    EXPECT_EQ(c1->blockAddr, blockAlign(target));
    EXPECT_EQ(c1->ptrDepth, 3u);
    EXPECT_EQ(c1->refId, 9u);
    auto c2 = queue.dequeue(
        dram, dram.channelOf(blockAlign(target) + kBlockBytes));
    ASSERT_TRUE(c2.has_value());
    EXPECT_EQ(c2->blockAddr, blockAlign(target) + kBlockBytes);
}

TEST_F(RegionQueueTest, PointerTargetMergeDeepensChase)
{
    RegionQueue queue(32, true, false);
    queue.addPointerTarget(0x70000, 2, 1, 0);
    queue.addPointerTarget(0x70000, 2, 5, 0);
    EXPECT_EQ(queue.size(), 1u);
    auto cand = queue.dequeue(dram, dram.channelOf(0x70000));
    ASSERT_TRUE(cand.has_value());
    EXPECT_EQ(cand->ptrDepth, 5u);
}

TEST_F(RegionQueueTest, BankAwarePrefersOpenRows)
{
    RegionQueue queue(32, true, /*bank_aware=*/true);
    DramSystem live(DramConfig{});
    // Open the row containing region B on channel 0.
    const Addr region_b = 0x800000;
    live.serve(region_b, 0);
    // Region A (closed row) is newer -> would win without
    // bank-awareness.
    queue.noteSpatialMiss(region_b, 64, 0, 0);
    queue.noteSpatialMiss(0x400000, 64, 0, 0);
    auto cand = queue.dequeue(live, 0);
    ASSERT_TRUE(cand.has_value());
    EXPECT_EQ(regionAlign(cand->blockAddr),
              regionAlign(region_b));
}

TEST_F(RegionQueueTest, ChannelsAreRespected)
{
    RegionQueue queue(32, true, false);
    queue.noteSpatialMiss(0x90000, 64, 0, 0);
    DramSystem dram_local{DramConfig{}};
    for (unsigned ch = 0; ch < 4; ++ch) {
        for (int i = 0; i < 20; ++i) {
            auto cand = queue.dequeue(dram_local, ch);
            if (!cand)
                break;
            EXPECT_EQ(dram_local.channelOf(cand->blockAddr), ch);
        }
    }
}

TEST_F(RegionQueueTest, EmptyDequeueReturnsNothing)
{
    RegionQueue queue(32, true, true);
    EXPECT_FALSE(queue.dequeue(dram, 0).has_value());
    queue.noteSpatialMiss(0xa0000, 64, 0, 0);
    queue.clear();
    EXPECT_FALSE(queue.dequeue(dram, 0).has_value());
    EXPECT_TRUE(queue.empty());
}

} // namespace
} // namespace grp
