/** @file Unit tests for the set-associative tag store. */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

CacheConfig
smallConfig(unsigned assoc = 4)
{
    // 4 sets x assoc x 64 B.
    return CacheConfig{4ull * assoc * kBlockBytes, assoc, 3, 8, 8};
}

/** Address of way-distinct block @p n in set @p set (4 sets). */
Addr
addrIn(unsigned set, unsigned n)
{
    return (static_cast<Addr>(n) * 4 + set) << kBlockShift;
}

class CacheTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
};

TEST_F(CacheTest, MissThenHit)
{
    Cache cache(smallConfig(), "t");
    EXPECT_FALSE(cache.access(0x40, false).hit);
    cache.insert(0x40, false, false);
    EXPECT_TRUE(cache.access(0x40, false).hit);
    EXPECT_TRUE(cache.contains(0x7f)); // Same block.
    EXPECT_FALSE(cache.contains(0x80));
}

TEST_F(CacheTest, LruEviction)
{
    Cache cache(smallConfig(2), "t");
    cache.insert(addrIn(0, 0), false, false);
    cache.insert(addrIn(0, 1), false, false);
    cache.access(addrIn(0, 0), false); // Touch 0: 1 becomes LRU.
    auto evicted = cache.insert(addrIn(0, 2), false, false);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->blockAddr, addrIn(0, 1));
    EXPECT_TRUE(cache.contains(addrIn(0, 0)));
}

TEST_F(CacheTest, EvictionReportsDirtiness)
{
    Cache cache(smallConfig(1), "t");
    cache.insert(addrIn(1, 0), false, true);
    auto evicted = cache.insert(addrIn(1, 1), false, false);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_TRUE(evicted->dirty);
    EXPECT_EQ(evicted->blockAddr, addrIn(1, 0));
}

TEST_F(CacheTest, WriteMarksDirty)
{
    Cache cache(smallConfig(1), "t");
    cache.insert(addrIn(0, 0), false, false);
    cache.access(addrIn(0, 0), true);
    auto evicted = cache.insert(addrIn(0, 1), false, false);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_TRUE(evicted->dirty);
}

TEST_F(CacheTest, PrefetchInsertsAtLruPosition)
{
    Cache cache(smallConfig(2), "t");
    cache.insert(addrIn(0, 0), false, false); // MRU-ish.
    cache.insert(addrIn(0, 1), true, false);  // Prefetch at LRU.
    // A new insert should displace the prefetched line, not block 0.
    auto evicted = cache.insert(addrIn(0, 2), false, false);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->blockAddr, addrIn(0, 1));
    EXPECT_TRUE(evicted->wasUnusedPrefetch);
    EXPECT_TRUE(cache.contains(addrIn(0, 0)));
}

TEST_F(CacheTest, ReferencedPrefetchIsPromoted)
{
    Cache cache(smallConfig(2), "t");
    cache.insert(addrIn(0, 0), false, false);
    cache.insert(addrIn(0, 1), true, false);
    auto result = cache.access(addrIn(0, 1), false);
    EXPECT_TRUE(result.hit);
    EXPECT_TRUE(result.firstUseOfPrefetch);
    // Second touch is no longer a "first use".
    EXPECT_FALSE(cache.access(addrIn(0, 1), false).firstUseOfPrefetch);
    // Promotion means block 0 is now the LRU victim.
    auto evicted = cache.insert(addrIn(0, 2), false, false);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->blockAddr, addrIn(0, 0));
    EXPECT_FALSE(evicted->wasUnusedPrefetch);
}

TEST_F(CacheTest, MruInsertionKnob)
{
    Cache cache(smallConfig(2), "t", /*lru_insertion=*/false);
    cache.insert(addrIn(0, 0), false, false);
    cache.insert(addrIn(0, 1), true, false); // Prefetch at MRU.
    auto evicted = cache.insert(addrIn(0, 2), false, false);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->blockAddr, addrIn(0, 0));
}

TEST_F(CacheTest, PollutionBoundedToOneWay)
{
    // The paper's property: unused prefetches displace at most 1/n
    // of the useful data. With n demand blocks resident and a stream
    // of prefetches into the set, exactly one way churns.
    const unsigned assoc = 4;
    Cache cache(smallConfig(assoc), "t");
    for (unsigned w = 0; w < assoc; ++w) {
        cache.insert(addrIn(2, w), false, false);
        cache.access(addrIn(2, w), false);
    }
    unsigned demand_evictions = 0;
    for (unsigned i = 0; i < 32; ++i) {
        auto evicted = cache.insert(addrIn(2, 100 + i), true, false);
        if (evicted && !evicted->wasUnusedPrefetch)
            ++demand_evictions;
    }
    EXPECT_EQ(demand_evictions, 1u);
    // Three of the four original blocks survive.
    unsigned survivors = 0;
    for (unsigned w = 0; w < assoc; ++w)
        survivors += cache.contains(addrIn(2, w));
    EXPECT_EQ(survivors, assoc - 1);
}

TEST_F(CacheTest, ReinsertOnlyUpdatesState)
{
    Cache cache(smallConfig(2), "t");
    cache.insert(addrIn(0, 0), false, false);
    auto evicted = cache.insert(addrIn(0, 0), false, true);
    EXPECT_FALSE(evicted.has_value());
    auto out = cache.insert(addrIn(0, 1), false, false);
    EXPECT_FALSE(out.has_value()); // Second way was free.
}

TEST_F(CacheTest, MarkDirtyAndInvalidate)
{
    Cache cache(smallConfig(1), "t");
    cache.insert(addrIn(0, 0), false, false);
    cache.markDirty(addrIn(0, 0));
    cache.markDirty(addrIn(0, 5)); // Absent: no-op.
    cache.invalidate(addrIn(0, 0));
    EXPECT_FALSE(cache.contains(addrIn(0, 0)));
}

TEST_F(CacheTest, ContainsUnusedPrefetch)
{
    Cache cache(smallConfig(2), "t");
    cache.insert(addrIn(0, 0), true, false);
    EXPECT_TRUE(cache.containsUnusedPrefetch(addrIn(0, 0)));
    cache.access(addrIn(0, 0), false);
    EXPECT_FALSE(cache.containsUnusedPrefetch(addrIn(0, 0)));
    EXPECT_FALSE(cache.containsUnusedPrefetch(addrIn(0, 1)));
}

TEST_F(CacheTest, StatsCountHitsAndMisses)
{
    Cache cache(smallConfig(), "t");
    cache.access(0x40, false);
    cache.insert(0x40, false, false);
    cache.access(0x40, false);
    EXPECT_EQ(cache.stats().value("accesses"), 2u);
    EXPECT_EQ(cache.stats().value("misses"), 1u);
    EXPECT_EQ(cache.stats().value("hits"), 1u);
}

TEST_F(CacheTest, ResetClearsContentAndStats)
{
    Cache cache(smallConfig(), "t");
    cache.insert(0x40, false, false);
    cache.access(0x40, false);
    cache.reset();
    EXPECT_FALSE(cache.contains(0x40));
    EXPECT_EQ(cache.stats().value("accesses"), 0u);
}

/** Parameterized geometry sweep: fills never lose blocks that were
 *  just inserted, across associativities. */
class CacheGeometry : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CacheGeometry, InsertedBlockIsPresent)
{
    setQuiet(true);
    const unsigned assoc = GetParam();
    Cache cache(CacheConfig{64ull * assoc * kBlockBytes, assoc, 3, 8,
                            8},
                "t");
    for (Addr block = 0; block < 512; ++block) {
        const Addr addr = block << kBlockShift;
        cache.insert(addr, block % 2 == 0, false);
        EXPECT_TRUE(cache.contains(addr));
    }
}

INSTANTIATE_TEST_SUITE_P(Assocs, CacheGeometry,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

} // namespace
} // namespace grp
