/**
 * @file
 * Host-profiler tests: nesting and self-vs-total accounting,
 * snapshot partitioning while scopes are open, thread-local
 * isolation under the sweep executor, the off-by-default contract
 * (a level-0 run registers no hostProf stats), allocation
 * accounting, and a micro-bound on the disabled-site cost (the
 * runtime arm of the <2% overhead budget in docs/PERFORMANCE.md).
 *
 * The env seed is pinned before any HostProfiler is constructed
 * (static initialiser below), so every worker thread the sweep
 * spawns starts at level 1 regardless of the outer environment.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/suite.hh"
#include "harness/sweep.hh"
#include "obs/host_prof.hh"

namespace grp
{
namespace
{

// Runs before main(), hence before the first HostProfiler::instance()
// call parses GRP_HOST_PROF (once per process).
const bool kEnvPinned = [] {
    setenv("GRP_HOST_PROF", "1", 1);
    return true;
}();

/** Spin for roughly @p micros of wall time (tick-source agnostic). */
void
spinFor(unsigned micros)
{
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::microseconds(micros);
    while (std::chrono::steady_clock::now() < until) {
    }
}

RunOptions
quickOptions()
{
    RunOptions opts;
    opts.maxInstructions = 20'000;
    opts.warmupInstructions = 0;
    return opts;
}

TEST(HostProf, NestingSelfVsTotal)
{
    ASSERT_TRUE(kEnvPinned);
    obs::HostProfiler &prof = obs::HostProfiler::instance();
    const int prev = prof.level();
    prof.setLevel(2);
    const obs::HostProfile base = prof.snapshot();

    {
        GRP_HOST_SCOPE_NAMED(outer, 1, Run);
        spinFor(2000);
        {
            GRP_HOST_SCOPE(2, Mshr);
            spinFor(2000);
        }
        spinFor(1000);
    }

    const obs::HostProfile delta = prof.snapshot().delta(base);
    prof.setLevel(prev);

    const obs::HostPhaseTotals &run =
        delta.phase(obs::HostPhase::Run);
    const obs::HostPhaseTotals &mshr =
        delta.phase(obs::HostPhase::Mshr);
    EXPECT_EQ(run.calls, 1u);
    EXPECT_EQ(mshr.calls, 1u);

    // Leaf: total == self. Parent: self excludes the child.
    EXPECT_EQ(mshr.totalNanos, mshr.selfNanos);
    EXPECT_GE(run.totalNanos, run.selfNanos);
    EXPECT_GE(run.totalNanos, mshr.totalNanos);
    EXPECT_GT(run.selfNanos, 0u);
    EXPECT_GT(mshr.selfNanos, 0u);

    // Self times partition the root total (tick->nanos conversion
    // rounds each phase separately; allow 1% slack).
    const uint64_t self_sum = delta.selfSumNanos();
    EXPECT_NEAR(static_cast<double>(self_sum),
                static_cast<double>(run.totalNanos),
                0.01 * static_cast<double>(run.totalNanos) + 100.0);
}

TEST(HostProf, SnapshotWhileScopesOpenStillPartitions)
{
    obs::HostProfiler &prof = obs::HostProfiler::instance();
    const int prev = prof.level();
    prof.setLevel(2);
    const obs::HostProfile base = prof.snapshot();

    GRP_HOST_SCOPE_NAMED(outer, 1, Run);
    spinFor(1000);
    {
        GRP_HOST_SCOPE_NAMED(inner, 2, Mshr);
        spinFor(1000);

        // Both scopes are still open: the snapshot must fold their
        // elapsed-so-far in, and self times must still sum to the
        // root's total.
        const obs::HostProfile mid = prof.snapshot().delta(base);
        const uint64_t run_total =
            mid.phase(obs::HostPhase::Run).totalNanos;
        EXPECT_EQ(mid.phase(obs::HostPhase::Run).calls, 1u);
        EXPECT_EQ(mid.phase(obs::HostPhase::Mshr).calls, 1u);
        EXPECT_GT(mid.phase(obs::HostPhase::Mshr).totalNanos, 0u);
        EXPECT_NEAR(static_cast<double>(mid.selfSumNanos()),
                    static_cast<double>(run_total),
                    0.01 * static_cast<double>(run_total) + 100.0);
        inner.stop();
        inner.stop(); // stop() is idempotent.
    }
    outer.stop();

    const obs::HostProfile done = prof.snapshot().delta(base);
    prof.setLevel(prev);
    EXPECT_EQ(done.phase(obs::HostPhase::Mshr).calls, 1u);
    EXPECT_EQ(done.phase(obs::HostPhase::Run).calls, 1u);
}

TEST(HostProf, ThreadLocalIsolationUnderRunSweep)
{
    // Four jobs on two workers: each worker thread's profiler is
    // thread_local and executeJob deltas around every job, so each
    // outcome must see exactly one run — no bleed between jobs that
    // shared a worker, none between workers.
    const RunOptions opts = quickOptions();
    std::vector<SweepJob> jobs;
    for (const char *workload : {"gzip", "mcf", "equake", "twolf"}) {
        jobs.push_back(SweepJob{
            workload, [name = std::string(workload), opts] {
                return runScheme(name, PrefetchScheme::GrpVar, opts);
            }});
    }
    const std::vector<SweepOutcome> outcomes = runSweep(jobs, 2);
    ASSERT_EQ(outcomes.size(), 4u);
    for (const SweepOutcome &outcome : outcomes) {
        ASSERT_FALSE(outcome.failed) << outcome.error;
        EXPECT_TRUE(outcome.hostProf.enabled());
        const obs::HostPhaseTotals &run =
            outcome.hostProf.phase(obs::HostPhase::Run);
        EXPECT_EQ(run.calls, 1u) << outcome.label;
        EXPECT_GT(run.totalNanos, 0u) << outcome.label;
        // Level 1: the hot-loop phases must NOT have fired.
        EXPECT_EQ(outcome.hostProf.phase(obs::HostPhase::Mshr).calls,
                  0u);
        EXPECT_NEAR(
            static_cast<double>(outcome.hostProf.selfSumNanos()),
            static_cast<double>(run.totalNanos),
            0.01 * static_cast<double>(run.totalNanos) + 1000.0);
    }
}

TEST(HostProf, LevelZeroRunRegistersNoStats)
{
    RunOptions opts = quickOptions();
    opts.obs.hostProfLevel = 0;
    const RunResult result =
        runScheme("mcf", PrefetchScheme::None, opts);
    for (const auto &[name, value] : result.stats.counters) {
        EXPECT_NE(name.rfind("hostProf.", 0), 0u)
            << name << " registered despite level 0";
    }
}

TEST(HostProf, ProfiledRunExportsCoherentStatGroup)
{
    RunOptions opts = quickOptions();
    opts.obs.hostProfLevel = 2;
    const RunResult result =
        runScheme("mcf", PrefetchScheme::GrpVar, opts);
    const uint64_t run_total =
        result.stats.value("hostProf.runTotalNanos");
    const uint64_t self_sum =
        result.stats.value("hostProf.selfSumNanos");
    ASSERT_GT(run_total, 0u);
    // The acceptance bar: attributed self time covers >= 95% of the
    // run (structural — every open scope folds into the snapshot).
    EXPECT_GE(static_cast<double>(self_sum),
              0.95 * static_cast<double>(run_total));
    EXPECT_LE(static_cast<double>(self_sum),
              1.05 * static_cast<double>(run_total));
    // Hot-loop phases fired at level 2.
    EXPECT_GT(result.stats.value("hostProf.cpuTickCalls"), 0u);
    EXPECT_GT(result.stats.value("hostProf.memAccessCalls"), 0u);
#if GRP_HOST_PROF_MAX_LEVEL > 0
    // Allocation accounting runs whenever the hooks are compiled in.
    EXPECT_GT(result.stats.value("hostProf.allocCount"), 0u);
    EXPECT_GT(result.stats.value("hostProf.peakRssKb"), 0u);
#endif
}

TEST(HostProf, DisabledSiteCostMicroBound)
{
    // The overhead budget says profiling *off* must stay invisible
    // (<2% on micro_components, see docs/PERFORMANCE.md). The unit
    // enforceable piece: one disabled site is a thread-local load
    // and a compare — bound its cost far below anything that could
    // add up to 2% (~30ns is two orders above the real cost, so the
    // test stays green on loaded CI workers while still catching an
    // accidental always-on rdtsc pair).
    obs::HostProfiler &prof = obs::HostProfiler::instance();
    const int prev = prof.level();
    prof.setLevel(0);
    constexpr int kIters = 1 << 20;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) {
        GRP_HOST_SCOPE(2, Mshr);
        asm volatile("" ::: "memory");
    }
    const double nanos_per_site =
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - start)
            .count() /
        kIters;
    prof.setLevel(prev);
    EXPECT_LT(nanos_per_site, 30.0);
}

} // namespace
} // namespace grp
