/** @file Unit tests for the functional memory and simulated heap. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "mem/functional_memory.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

class FunctionalMemoryTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    FunctionalMemory mem;
};

TEST_F(FunctionalMemoryTest, ReadsZeroWhenUntouched)
{
    EXPECT_EQ(mem.read64(0x1000), 0u);
    EXPECT_EQ(mem.read32(0x1004), 0u);
    EXPECT_EQ(mem.pageCount(), 0u);
}

TEST_F(FunctionalMemoryTest, Write64ReadBack)
{
    mem.write64(0x2000, 0xdead'beef'cafe'f00dull);
    EXPECT_EQ(mem.read64(0x2000), 0xdead'beef'cafe'f00dull);
    EXPECT_EQ(mem.pageCount(), 1u);
}

TEST_F(FunctionalMemoryTest, Write32HalvesOfAWord)
{
    mem.write32(0x3000, 0x1111'2222);
    mem.write32(0x3004, 0x3333'4444);
    EXPECT_EQ(mem.read32(0x3000), 0x1111'2222u);
    EXPECT_EQ(mem.read32(0x3004), 0x3333'4444u);
    EXPECT_EQ(mem.read64(0x3000), 0x3333'4444'1111'2222ull);
}

TEST_F(FunctionalMemoryTest, Write32PreservesOtherHalf)
{
    mem.write64(0x3000, 0xaaaa'bbbb'cccc'ddddull);
    mem.write32(0x3000, 0x1234'5678);
    EXPECT_EQ(mem.read64(0x3000), 0xaaaa'bbbb'1234'5678ull);
}

TEST_F(FunctionalMemoryTest, UnalignedAccessPanics)
{
    EXPECT_THROW(mem.read64(0x1001), std::logic_error);
    EXPECT_THROW(mem.write64(0x1004, 1), std::logic_error);
    EXPECT_THROW(mem.read32(0x1002), std::logic_error);
}

TEST_F(FunctionalMemoryTest, ReadBlockGathersEightWords)
{
    const Addr base = 0x4000;
    for (unsigned i = 0; i < 8; ++i)
        mem.write64(base + 8 * i, 100 + i);
    std::array<uint64_t, 8> words;
    mem.readBlock(base + 24, words); // Mid-block address is fine.
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(words[i], 100 + i);
}

TEST_F(FunctionalMemoryTest, HeapAllocIsMonotoneAndDisjoint)
{
    const Addr a = mem.heapAlloc(100);
    const Addr b = mem.heapAlloc(100);
    EXPECT_GE(a, mem.heapBase());
    EXPECT_GE(b, a + 100);
    EXPECT_EQ(mem.heapEnd(), b + 100);
}

TEST_F(FunctionalMemoryTest, HeapAllocRespectsAlignment)
{
    mem.heapAlloc(3);
    const Addr aligned = mem.heapAlloc(64, 64);
    EXPECT_EQ(aligned % 64, 0u);
}

TEST_F(FunctionalMemoryTest, SequentialAllocationIsSpatiallyLocal)
{
    // The property the paper leans on: consecutive allocations land
    // at consecutive addresses.
    Addr prev = mem.heapAlloc(64, 64);
    for (int i = 0; i < 16; ++i) {
        const Addr next = mem.heapAlloc(64, 64);
        EXPECT_EQ(next, prev + 64);
        prev = next;
    }
}

TEST_F(FunctionalMemoryTest, PointerTestBaseAndBounds)
{
    const Addr node = mem.heapAlloc(64);
    EXPECT_TRUE(mem.looksLikeHeapPointer(node));
    EXPECT_TRUE(mem.looksLikeHeapPointer(mem.heapEnd() - 1));
    EXPECT_FALSE(mem.looksLikeHeapPointer(mem.heapEnd()));
    EXPECT_FALSE(mem.looksLikeHeapPointer(mem.heapBase() - 1));
    EXPECT_FALSE(mem.looksLikeHeapPointer(0));
    EXPECT_FALSE(mem.looksLikeHeapPointer(42));
}

TEST_F(FunctionalMemoryTest, StaticSegmentIsDistinctFromHeap)
{
    const Addr s = mem.staticAlloc(4096, 64);
    EXPECT_GE(s, FunctionalMemory::kStaticBase);
    EXPECT_LT(s, FunctionalMemory::kHeapBase);
    EXPECT_FALSE(mem.looksLikeHeapPointer(s));
}

TEST_F(FunctionalMemoryTest, ZeroByteAllocationIsFatal)
{
    EXPECT_THROW(mem.heapAlloc(0), std::runtime_error);
    EXPECT_THROW(mem.staticAlloc(0), std::runtime_error);
}

TEST_F(FunctionalMemoryTest, BadAlignmentIsFatal)
{
    EXPECT_THROW(mem.heapAlloc(8, 3), std::runtime_error);
}

} // namespace
} // namespace grp
