/** @file Unit tests for the IR tree-walk helpers and suite
 *  groupings. */

#include <gtest/gtest.h>

#include <vector>

#include "compiler/builder.hh"
#include "compiler/walk.hh"
#include "harness/suite.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

class WalkTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    FunctionalMemory mem;
};

TEST_F(WalkTest, ForEachStmtSeesNestDepth)
{
    ProgramBuilder b(mem);
    const ArrayId a = b.array("a", 8, {64});
    b.compute(1); // Depth 0.
    b.forLoop(0, 4);
    b.compute(1); // Depth 1.
    b.forLoop(0, 4);
    b.arrayRef(a, {Subscript::affine(Affine::of(0))}); // Depth 2.
    b.end();
    b.end();
    Program prog = b.build();

    std::vector<size_t> depths;
    forEachStmt(prog, [&](const Stmt &, const LoopNest &nest) {
        depths.push_back(nest.size());
    });
    EXPECT_EQ(depths, (std::vector<size_t>{0, 1, 2}));
}

TEST_F(WalkTest, ForEachLoopVisitsOuterFirst)
{
    ProgramBuilder b(mem);
    b.forLoop(0, 2);
    b.forLoop(0, 3);
    b.end();
    b.end();
    b.forLoop(0, 5);
    b.end();
    Program prog = b.build();

    std::vector<int64_t> uppers;
    forEachLoop(prog, [&](const Loop &loop, const LoopNest &nest) {
        uppers.push_back(loop.upper);
        if (loop.upper == 3)
            EXPECT_EQ(nest.size(), 1u);
        else
            EXPECT_TRUE(nest.empty());
    });
    EXPECT_EQ(uppers, (std::vector<int64_t>{2, 3, 5}));
}

TEST_F(WalkTest, SpatialDimFollowsLayout)
{
    ArrayDecl row_major;
    row_major.extents = {4, 8, 16};
    row_major.columnMajor = false;
    EXPECT_EQ(spatialDim(row_major), 2u);

    ArrayDecl col_major = row_major;
    col_major.columnMajor = true;
    EXPECT_EQ(spatialDim(col_major), 0u);
}

TEST_F(WalkTest, AffineHelpers)
{
    Affine expr = Affine::var(3, 5, 7);
    EXPECT_EQ(expr.constant, 7);
    EXPECT_EQ(expr.coeffOf(3), 5);
    EXPECT_EQ(expr.coeffOf(4), 0);
    EXPECT_TRUE(expr.dependsOn(3));
    EXPECT_FALSE(expr.dependsOn(4));
    EXPECT_EQ(Affine::of(9).constant, 9);
    EXPECT_TRUE(Affine::of(9).terms.empty());
}

class SuiteTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
};

TEST_F(SuiteTest, PerfSuiteExcludesCrafty)
{
    const auto names = perfSuite();
    EXPECT_EQ(names.size(), 17u);
    for (const auto &name : names)
        EXPECT_NE(name, "crafty");
}

TEST_F(SuiteTest, IntAndFpPartition)
{
    const auto ints = intSuite();
    const auto fps = fpSuite();
    EXPECT_EQ(ints.size(), 8u); // gzip vpr mcf parser gap bzip2
                                // twolf sphinx
    EXPECT_EQ(fps.size(), 9u);  // wupwise swim mgrid applu mesa art
                                // equake ammp apsi
    for (const auto &name : ints) {
        for (const auto &fp : fps)
            EXPECT_NE(name, fp);
    }
}

TEST_F(SuiteTest, MetricHelpers)
{
    RunResult fast, slow, perfect;
    fast.ipc = 2.0;
    slow.ipc = 1.0;
    perfect.ipc = 4.0;
    EXPECT_DOUBLE_EQ(speedup(fast, slow), 2.0);
    EXPECT_DOUBLE_EQ(gapFromPerfect(fast, perfect), 50.0);
    fast.trafficBytes = 300;
    slow.trafficBytes = 100;
    EXPECT_DOUBLE_EQ(trafficRatio(fast, slow), 3.0);
}

TEST_F(SuiteTest, CoverageAgainstBase)
{
    RunResult base, covered;
    base.l2MissesToMemory = 100;
    covered.l2MissesToMemory = 25;
    EXPECT_DOUBLE_EQ(covered.coveragePct(base), 75.0);
    RunResult worse;
    worse.l2MissesToMemory = 120;
    EXPECT_DOUBLE_EQ(worse.coveragePct(base), -20.0);
}

} // namespace
} // namespace grp
