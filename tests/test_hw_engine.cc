/** @file Unit tests for the pure-hardware engines (SRP, pointer). */

#include <gtest/gtest.h>

#include <vector>

#include "mem/dram.hh"
#include "prefetch/hw_engine.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

class HwEngineTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }

    std::vector<PrefetchCandidate>
    drain(HwPrefetchEngine &engine)
    {
        std::vector<PrefetchCandidate> out;
        bool progress = true;
        while (progress) {
            progress = false;
            for (unsigned ch = 0; ch < 4; ++ch) {
                if (auto cand = engine.dequeuePrefetch(dram, ch)) {
                    out.push_back(*cand);
                    progress = true;
                }
            }
        }
        return out;
    }

    SimConfig config;
    FunctionalMemory mem;
    DramSystem dram{DramConfig{}};
};

TEST_F(HwEngineTest, RejectsHintSchemes)
{
    config.scheme = PrefetchScheme::GrpVar;
    EXPECT_THROW(HwPrefetchEngine(config, mem), std::runtime_error);
}

TEST_F(HwEngineTest, SrpPrefetchesEveryMissUnconditionally)
{
    config.scheme = PrefetchScheme::Srp;
    HwPrefetchEngine engine(config, mem);
    // No hints at all: SRP does not care.
    engine.onL2DemandMiss(0x40000, kInvalidRefId, LoadHints{});
    EXPECT_EQ(drain(engine).size(), 63u);
    EXPECT_EQ(engine.stats().value("regionsAllocated"), 1u);
}

TEST_F(HwEngineTest, SrpDoesNotScanPointers)
{
    config.scheme = PrefetchScheme::Srp;
    HwPrefetchEngine engine(config, mem);
    const Addr node = mem.heapAlloc(64, 64);
    mem.write64(node, mem.heapAlloc(64, 64));
    engine.onFill(node, 1, ReqClass::Demand);
    EXPECT_EQ(engine.stats().value("linesScanned"), 0u);
}

TEST_F(HwEngineTest, PointerModeScansButNoRegions)
{
    config.scheme = PrefetchScheme::PointerHw;
    HwPrefetchEngine engine(config, mem);
    engine.onL2DemandMiss(0x40000, 0, LoadHints{});
    EXPECT_TRUE(drain(engine).empty()); // No region prefetching.

    const Addr node = mem.heapAlloc(64, 64);
    const Addr next = mem.heapAlloc(64, 64);
    mem.write64(node, next);
    engine.onFill(node, 1, ReqClass::Demand);
    auto candidates = drain(engine);
    EXPECT_EQ(candidates.size(), 2u); // Target + successor block.
    EXPECT_EQ(engine.stats().value("pointersFound"), 1u);
}

TEST_F(HwEngineTest, SrpPlusPointerDoesBoth)
{
    config.scheme = PrefetchScheme::SrpPlusPointer;
    HwPrefetchEngine engine(config, mem);
    const Addr node = mem.heapAlloc(64, 64);
    mem.write64(node + 8, mem.heapAlloc(64, 64));

    engine.onL2DemandMiss(node, 0, LoadHints{});
    engine.onFill(node, 1, ReqClass::Demand);
    auto candidates = drain(engine);
    // 63 region blocks + pointer blocks (some may overlap with the
    // region and merge).
    EXPECT_GE(candidates.size(), 63u);
    EXPECT_EQ(engine.stats().value("regionsAllocated"), 1u);
    EXPECT_EQ(engine.stats().value("linesScanned"), 1u);
}

TEST_F(HwEngineTest, RecursiveDepthDecrements)
{
    config.scheme = PrefetchScheme::PointerHwRec;
    HwPrefetchEngine engine(config, mem);
    const Addr node = mem.heapAlloc(64, 64);
    mem.write64(node, mem.heapAlloc(4096, 64));
    engine.onFill(node, 6, ReqClass::Demand);
    auto candidates = drain(engine);
    ASSERT_FALSE(candidates.empty());
    for (const auto &cand : candidates)
        EXPECT_EQ(cand.ptrDepth, 5u);
}

TEST_F(HwEngineTest, SecondMissToRegionUpdatesNotAllocates)
{
    config.scheme = PrefetchScheme::Srp;
    HwPrefetchEngine engine(config, mem);
    engine.onL2DemandMiss(0x40000, 0, LoadHints{});
    engine.onL2DemandMiss(0x40000 + 3 * kBlockBytes, 0, LoadHints{});
    EXPECT_EQ(engine.stats().value("regionsAllocated"), 1u);
    EXPECT_EQ(engine.stats().value("regionsUpdated"), 1u);
    EXPECT_EQ(drain(engine).size(), 62u);
}

TEST_F(HwEngineTest, ResetDropsPendingWork)
{
    config.scheme = PrefetchScheme::Srp;
    HwPrefetchEngine engine(config, mem);
    engine.onL2DemandMiss(0x40000, 0, LoadHints{});
    engine.reset();
    EXPECT_TRUE(drain(engine).empty());
}

} // namespace
} // namespace grp
