/** @file Unit tests for indirect detection and instruction
 *  insertion (§4.3). */

#include <gtest/gtest.h>

#include "compiler/builder.hh"
#include "compiler/indirect_analysis.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

class IndirectTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    FunctionalMemory mem;
};

TEST_F(IndirectTest, InsertsInstructionBeforeReference)
{
    ProgramBuilder b(mem);
    const ArrayId idx = b.array("b", 4, {1024});
    const ArrayId data = b.array("a", 8, {64 * 1024});
    const VarId i = b.forLoop(0, 1024);
    b.arrayRef(data,
               {Subscript::indirect(idx, Affine::var(i), 2, 5)});
    b.end();
    Program prog = b.build();

    IndirectAnalysis analysis;
    EXPECT_EQ(analysis.run(prog), 1u);

    const auto &body = prog.top[0].loop.body;
    ASSERT_EQ(body.size(), 2u);
    const Stmt &pf = body[0].stmt;
    EXPECT_EQ(pf.kind, StmtKind::IndirectPf);
    EXPECT_EQ(pf.targetArray, data);
    EXPECT_EQ(pf.indexArray, idx);
    EXPECT_EQ(pf.scale, 2);
    EXPECT_EQ(pf.indexOffset, 5);
    // One instruction per 64 B of 4-byte indices.
    EXPECT_EQ(pf.everyN, 16u);
    EXPECT_EQ(body[1].stmt.kind, StmtKind::ArrayRef);
}

TEST_F(IndirectTest, NoInsertionOutsideLoops)
{
    ProgramBuilder b(mem);
    const ArrayId idx = b.array("b", 4, {16});
    const ArrayId data = b.array("a", 8, {1024});
    b.arrayRef(data, {Subscript::indirect(idx, Affine::of(3))});
    Program prog = b.build();
    IndirectAnalysis analysis;
    EXPECT_EQ(analysis.run(prog), 0u);
}

TEST_F(IndirectTest, NoInsertionForNonInductionIndex)
{
    // The index expression does not depend on any loop variable.
    ProgramBuilder b(mem);
    const ArrayId idx = b.array("b", 4, {16});
    const ArrayId data = b.array("a", 8, {1024});
    b.forLoop(0, 8);
    b.arrayRef(data, {Subscript::indirect(idx, Affine::of(3))});
    b.end();
    Program prog = b.build();
    IndirectAnalysis analysis;
    EXPECT_EQ(analysis.run(prog), 0u);
    EXPECT_EQ(prog.top[0].loop.body.size(), 1u);
}

TEST_F(IndirectTest, PlainAffineReferencesUntouched)
{
    ProgramBuilder b(mem);
    const ArrayId data = b.array("a", 8, {1024});
    const VarId i = b.forLoop(0, 8);
    b.arrayRef(data, {Subscript::affine(Affine::var(i))});
    b.end();
    Program prog = b.build();
    IndirectAnalysis analysis;
    EXPECT_EQ(analysis.run(prog), 0u);
}

TEST_F(IndirectTest, EveryNScalesWithIndexElementSize)
{
    ProgramBuilder b(mem);
    const ArrayId idx = b.array("b", 8, {1024}); // 8-byte indices.
    const ArrayId data = b.array("a", 8, {64 * 1024});
    const VarId i = b.forLoop(0, 1024);
    b.arrayRef(data, {Subscript::indirect(idx, Affine::var(i))});
    b.end();
    Program prog = b.build();
    IndirectAnalysis analysis;
    ASSERT_EQ(analysis.run(prog), 1u);
    EXPECT_EQ(prog.top[0].loop.body[0].stmt.everyN, 8u);
}

TEST_F(IndirectTest, NestedLoopsAreSearched)
{
    ProgramBuilder b(mem);
    const ArrayId idx = b.array("b", 4, {1024});
    const ArrayId data = b.array("a", 8, {64 * 1024});
    b.forLoop(0, 4);
    const VarId i = b.forLoop(0, 256);
    b.arrayRef(data, {Subscript::indirect(idx, Affine::var(i))});
    b.end();
    b.end();
    Program prog = b.build();
    IndirectAnalysis analysis;
    EXPECT_EQ(analysis.run(prog), 1u);
}

TEST_F(IndirectTest, OneInstructionPerReference)
{
    ProgramBuilder b(mem);
    const ArrayId idx = b.array("b", 4, {1024});
    const ArrayId data = b.array("a", 8, {64 * 1024});
    const VarId i = b.forLoop(0, 256);
    b.arrayRef(data, {Subscript::indirect(idx, Affine::var(i))});
    b.arrayRef(data, {Subscript::indirect(idx, Affine::var(i))},
               true);
    b.end();
    Program prog = b.build();
    IndirectAnalysis analysis;
    EXPECT_EQ(analysis.run(prog), 2u);
    EXPECT_EQ(prog.top[0].loop.body.size(), 4u);
}

} // namespace
} // namespace grp
