/** @file Unit tests for configuration validation and helpers. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/config.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

class ConfigTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    SimConfig config;
};

TEST_F(ConfigTest, DefaultsMatchPaperParameters)
{
    EXPECT_EQ(config.l1d.sizeBytes, 64u * 1024);
    EXPECT_EQ(config.l1d.assoc, 2u);
    EXPECT_EQ(config.l1d.latency, 3u);
    EXPECT_EQ(config.l2.sizeBytes, 1024u * 1024);
    EXPECT_EQ(config.l2.assoc, 4u);
    EXPECT_EQ(config.l2.latency, 12u);
    EXPECT_EQ(config.l1d.mshrs, 8u);
    EXPECT_EQ(config.l2.mshrs, 8u);
    EXPECT_EQ(config.dram.channels, 4u);
    EXPECT_EQ(config.cpu.issueWidth, 4u);
    EXPECT_EQ(config.cpu.robEntries, 64u);
    EXPECT_EQ(config.region.queueEntries, 32u);
    EXPECT_TRUE(config.region.lifo);
    EXPECT_EQ(config.region.recursiveDepth, 6u);
    EXPECT_EQ(config.region.blocksPerPointer, 2u);
    EXPECT_EQ(config.region.indirectFanout, 16u);
    EXPECT_EQ(config.stride.tableEntries, 1024u);
    EXPECT_EQ(config.stride.tableAssoc, 4u);
    EXPECT_EQ(config.stride.streamBuffers, 8u);
    EXPECT_EQ(config.stride.bufferEntries, 8u);
    EXPECT_NO_THROW(config.validate());
}

TEST_F(ConfigTest, RejectsNonPowerOfTwoCache)
{
    config.l2.sizeBytes = 1000 * 1000;
    EXPECT_THROW(config.validate(), std::runtime_error);
}

TEST_F(ConfigTest, RejectsZeroAssoc)
{
    config.l1d.assoc = 0;
    EXPECT_THROW(config.validate(), std::runtime_error);
}

TEST_F(ConfigTest, RejectsL2SmallerThanL1)
{
    config.l2.sizeBytes = 32 * 1024;
    EXPECT_THROW(config.validate(), std::runtime_error);
}

TEST_F(ConfigTest, RejectsZeroMshrs)
{
    config.l2.mshrs = 0;
    EXPECT_THROW(config.validate(), std::runtime_error);
}

TEST_F(ConfigTest, RejectsBadChannelCount)
{
    config.dram.channels = 3;
    EXPECT_THROW(config.validate(), std::runtime_error);
}

TEST_F(ConfigTest, RejectsOverlongRecursion)
{
    config.region.recursiveDepth = 8; // 3-bit counter.
    EXPECT_THROW(config.validate(), std::runtime_error);
}

TEST_F(ConfigTest, RejectsBadStrideTableShape)
{
    config.stride.tableEntries = 10;
    config.stride.tableAssoc = 4;
    EXPECT_THROW(config.validate(), std::runtime_error);
}

TEST_F(ConfigTest, SchemePredicates)
{
    config.scheme = PrefetchScheme::None;
    EXPECT_FALSE(config.usesHints());
    EXPECT_FALSE(config.usesRegions());
    EXPECT_FALSE(config.usesPointerScan());

    config.scheme = PrefetchScheme::Srp;
    EXPECT_FALSE(config.usesHints());
    EXPECT_TRUE(config.usesRegions());
    EXPECT_FALSE(config.usesPointerScan());

    config.scheme = PrefetchScheme::GrpVar;
    EXPECT_TRUE(config.usesHints());
    EXPECT_TRUE(config.usesRegions());
    EXPECT_TRUE(config.usesPointerScan());

    config.scheme = PrefetchScheme::PointerHw;
    EXPECT_FALSE(config.usesRegions());
    EXPECT_TRUE(config.usesPointerScan());

    config.scheme = PrefetchScheme::SrpPlusPointer;
    EXPECT_TRUE(config.usesRegions());
    EXPECT_TRUE(config.usesPointerScan());
}

TEST_F(ConfigTest, ToStringNames)
{
    EXPECT_STREQ(toString(PrefetchScheme::Srp), "srp");
    EXPECT_STREQ(toString(PrefetchScheme::GrpFix), "grp-fix");
    EXPECT_STREQ(toString(Perfection::PerfectL2), "perfect-l2");
    EXPECT_STREQ(toString(CompilerPolicy::Aggressive), "aggressive");
}

} // namespace
} // namespace grp
