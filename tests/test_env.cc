/** @file Unit tests for the shared numeric env-knob parser. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "sim/env.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

constexpr const char *kVar = "GRP_TEST_ENV_INT";

class EnvIntTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setQuiet(true);
        unsetenv(kVar);
    }

    void TearDown() override { unsetenv(kVar); }
};

TEST_F(EnvIntTest, UnsetAndEmptyReturnFallback)
{
    EXPECT_EQ(envInt(kVar, 42), 42u);
    setenv(kVar, "", 1);
    EXPECT_EQ(envInt(kVar, 42), 42u);
}

TEST_F(EnvIntTest, ParsesPlainDecimals)
{
    setenv(kVar, "0", 1);
    EXPECT_EQ(envInt(kVar, 42), 0u);
    setenv(kVar, "200000000", 1);
    EXPECT_EQ(envInt(kVar, 42), 200'000'000u);
    setenv(kVar, "18446744073709551615", 1); // UINT64_MAX
    EXPECT_EQ(envInt(kVar, 42), ~0ull);
}

TEST_F(EnvIntTest, RejectsNonNumericText)
{
    for (const char *bad : {"nonsense", "20k", "1e6", "4x", "1 "}) {
        setenv(kVar, bad, 1);
        EXPECT_THROW(envInt(kVar, 42), std::runtime_error)
            << "accepted '" << bad << "'";
    }
}

TEST_F(EnvIntTest, RejectsSignsAndWhitespace)
{
    for (const char *bad : {"-5", "-0", "+7", " 7", "7 "}) {
        setenv(kVar, bad, 1);
        EXPECT_THROW(envInt(kVar, 42), std::runtime_error)
            << "accepted '" << bad << "'";
    }
}

TEST_F(EnvIntTest, RejectsOverflow)
{
    setenv(kVar, "18446744073709551616", 1); // UINT64_MAX + 1
    EXPECT_THROW(envInt(kVar, 42), std::runtime_error);
    setenv(kVar, "99999999999999999999999999", 1);
    EXPECT_THROW(envInt(kVar, 42), std::runtime_error);
}

TEST_F(EnvIntTest, DiagnosticNamesTheVariable)
{
    setenv(kVar, "bogus", 1);
    try {
        envInt(kVar, 42);
        FAIL() << "expected fatal";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find(kVar), std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("bogus"),
                  std::string::npos)
            << e.what();
    }
}

} // namespace
} // namespace grp
