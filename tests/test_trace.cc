/** @file End-to-end tests for the prefetch lifecycle tracer: the
 *  JSONL schema, lifecycle ordering, warmup attribution consistency
 *  with RunResult, and level filtering. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "obs/json_reader.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

/** One parsed trace line, with the optional fields defaulted. */
struct ParsedRecord
{
    uint64_t tick = 0;
    std::string event;
    uint64_t addr = 0;
    std::string hint = "none";
    int64_t extra = -1;
    bool warm = false;
    bool carry = false;
};

std::vector<ParsedRecord>
readTrace(const std::string &path)
{
    std::vector<ParsedRecord> records;
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << path;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::string error;
        auto doc = obs::parseJson(line, &error);
        EXPECT_TRUE(doc) << error << " in: " << line;
        if (!doc)
            continue;
        ParsedRecord rec;
        const obs::JsonValue *t = doc->find("t");
        const obs::JsonValue *ev = doc->find("ev");
        EXPECT_TRUE(t && ev) << line;
        if (!t || !ev)
            continue;
        rec.tick = static_cast<uint64_t>(t->asNumber());
        rec.event = ev->asString();
        if (const obs::JsonValue *addr = doc->find("addr"))
            rec.addr = static_cast<uint64_t>(addr->asNumber());
        if (const obs::JsonValue *hint = doc->find("hint"))
            rec.hint = hint->asString();
        if (const obs::JsonValue *x = doc->find("x"))
            rec.extra = static_cast<int64_t>(x->asNumber());
        if (const obs::JsonValue *warm = doc->find("warm"))
            rec.warm = warm->asBool();
        if (const obs::JsonValue *carry = doc->find("carry"))
            rec.carry = carry->asBool();
        records.push_back(rec);
    }
    return records;
}

/** A record from the measured window with no warmup attribution. */
bool
measured(const ParsedRecord &rec)
{
    return !rec.warm && !rec.carry;
}

RunResult
runTraced(const std::string &workload, PrefetchScheme scheme,
          const std::string &trace_path, int trace_level,
          uint64_t instructions = 60'000)
{
    setQuiet(true);
    SimConfig config;
    config.scheme = scheme;
    RunOptions opts;
    opts.maxInstructions = instructions;
    opts.obs.tracePath = trace_path;
    opts.obs.traceLevel = trace_level;
    return runWorkload(workload, config, opts);
}

std::string
tracePath(const char *name)
{
    return ::testing::TempDir() + name;
}

TEST(Trace, LifecycleOrderingPerBlock)
{
    const std::string path = tracePath("grp_trace_order.jsonl");
    runTraced("mcf", PrefetchScheme::GrpVar, path, 2);
    const std::vector<ParsedRecord> records = readTrace(path);
    ASSERT_FALSE(records.empty());

    // Ticks never go backwards: the trace is an event-ordered log.
    for (size_t i = 1; i < records.size(); ++i)
        EXPECT_GE(records[i].tick, records[i - 1].tick);

    // Per block: first issue <= first fill <= first use.
    std::map<uint64_t, uint64_t> first_issue, first_fill, first_use;
    for (const ParsedRecord &rec : records) {
        if (!rec.addr)
            continue;
        auto note = [&](std::map<uint64_t, uint64_t> &m) {
            m.emplace(rec.addr, rec.tick);
        };
        if (rec.event == "issue")
            note(first_issue);
        else if (rec.event == "fill")
            note(first_fill);
        else if (rec.event == "firstUse")
            note(first_use);
    }
    ASSERT_FALSE(first_fill.empty());
    size_t chained = 0;
    for (const auto &[addr, fill_tick] : first_fill) {
        auto issue = first_issue.find(addr);
        // Stream-buffer fills have no issue record; DRAM fills do.
        if (issue != first_issue.end())
            EXPECT_LE(issue->second, fill_tick) << std::hex << addr;
        auto use = first_use.find(addr);
        if (use != first_use.end() && use->second >= fill_tick)
            ++chained;
    }
    // At least some blocks complete the full fill -> first-use arc.
    EXPECT_GT(chained, 0u);
}

TEST(Trace, MeasuredEventsMatchRunResult)
{
    const std::string path = tracePath("grp_trace_counts.jsonl");
    const RunResult result =
        runTraced("mcf", PrefetchScheme::GrpVar, path, 2);
    const std::vector<ParsedRecord> records = readTrace(path);

    uint64_t measured_use = 0, carry_use = 0, measured_fills = 0;
    std::map<std::string, uint64_t> use_by_hint, fills_by_hint;
    for (const ParsedRecord &rec : records) {
        if (rec.event == "firstUse") {
            if (measured(rec)) {
                ++measured_use;
                ++use_by_hint[rec.hint];
            } else {
                ++carry_use;
            }
        } else if (rec.event == "fill" && measured(rec)) {
            ++measured_fills;
            ++fills_by_hint[rec.hint];
        }
    }

    // Measured first-uses reproduce the run's useful-prefetch count;
    // warmup-era uses are attributed separately.
    EXPECT_EQ(measured_use, result.usefulPrefetches);
    EXPECT_GE(carry_use, result.warmupUsefulPrefetches);

    // Every measured fill increments the prefetchFills counter (the
    // counter additionally includes boundary-straddling fills).
    EXPECT_LE(measured_fills, result.prefetchFills);
    EXPECT_GT(measured_fills, 0u);

    // Per-hint-class accuracy is recomputable: each class uses at
    // most what it filled, and the classes partition the totals.
    uint64_t use_sum = 0, fill_sum = 0;
    for (const auto &[hint, fills] : fills_by_hint) {
        EXPECT_LE(use_by_hint[hint], fills) << hint;
        fill_sum += fills;
    }
    for (const auto &[hint, uses] : use_by_hint)
        use_sum += uses;
    EXPECT_EQ(use_sum, measured_use);
    EXPECT_EQ(fill_sum, measured_fills);
    if (measured_fills) {
        const double trace_accuracy =
            static_cast<double>(measured_use) /
            static_cast<double>(measured_fills);
        // The trace denominator excludes boundary-straddling fills,
        // so it can only read at or above the RunResult ratio.
        EXPECT_GE(trace_accuracy + 1e-12, result.accuracy());
        EXPECT_LE(trace_accuracy, 1.0);
    }
}

TEST(Trace, EvictedUnusedMatchesCounter)
{
    const std::string path = tracePath("grp_trace_evict.jsonl");
    const RunResult result =
        runTraced("art", PrefetchScheme::Srp, path, 1, 150'000);
    const std::vector<ParsedRecord> records = readTrace(path);

    // Aggressive SRP on a streaming workload must waste some fills.
    uint64_t evicted_measured_window = 0;
    for (const ParsedRecord &rec : records) {
        if (rec.event == "evictedUnused" && !rec.warm)
            ++evicted_measured_window;
    }
    EXPECT_GT(evicted_measured_window, 0u);
    EXPECT_EQ(evicted_measured_window,
              result.stats.value("mem.prefetchEvictedUnused"));
}

TEST(Trace, LevelOneFiltersQueueAndStallEvents)
{
    const std::string path = tracePath("grp_trace_lvl1.jsonl");
    runTraced("mcf", PrefetchScheme::GrpVar, path, 1);
    const std::vector<ParsedRecord> records = readTrace(path);
    ASSERT_FALSE(records.empty());
    for (const ParsedRecord &rec : records) {
        EXPECT_NE(rec.event, "hintTrigger");
        EXPECT_NE(rec.event, "enqueue");
        EXPECT_NE(rec.event, "drop");
        EXPECT_NE(rec.event, "filtered");
        EXPECT_NE(rec.event, "stall");
    }
}

TEST(Trace, LevelTwoAddsQueueEvents)
{
    const std::string path = tracePath("grp_trace_lvl2.jsonl");
    runTraced("mcf", PrefetchScheme::GrpVar, path, 2);
    const std::vector<ParsedRecord> records = readTrace(path);
    bool saw_queue_event = false;
    for (const ParsedRecord &rec : records) {
        if (rec.event == "hintTrigger" || rec.event == "enqueue")
            saw_queue_event = true;
        EXPECT_NE(rec.event, "stall"); // Level 3 only.
    }
    EXPECT_TRUE(saw_queue_event);
}

TEST(Trace, DisabledWhenNoPathGiven)
{
    setQuiet(true);
    SimConfig config;
    config.scheme = PrefetchScheme::GrpVar;
    RunOptions opts;
    opts.maxInstructions = 20'000;
    const uint64_t before = obs::Tracer::instance().recordsWritten();
    runWorkload("mcf", config, opts);
    EXPECT_EQ(obs::Tracer::instance().recordsWritten(), before);
    EXPECT_FALSE(obs::Tracer::instance().enabled(1));
}

} // namespace
} // namespace grp
