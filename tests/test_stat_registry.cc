/** @file Registration lifecycle, lookup, snapshot and JSON/CSV
 *  round-trip tests for the observability stat registry. */

#include <gtest/gtest.h>

#include <sstream>

#include "mem/memory_system.hh"
#include "obs/json_reader.hh"
#include "obs/stat_registry.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"

namespace grp
{
namespace
{

TEST(StatRegistry, RegistrationLifecycle)
{
    obs::StatRegistry registry;
    EXPECT_EQ(registry.size(), 0u);
    {
        StatGroup group("g");
        obs::ScopedStatRegistration reg(group, registry);
        EXPECT_EQ(registry.size(), 1u);
        EXPECT_EQ(registry.find("g"), &group);
    }
    EXPECT_EQ(registry.size(), 0u);
    EXPECT_EQ(registry.find("g"), nullptr);
}

TEST(StatRegistry, ValueLookupNewestWins)
{
    obs::StatRegistry registry;
    StatGroup old_group("cache");
    old_group.counter("hits") += 3;
    StatGroup new_group("cache");
    new_group.counter("hits") += 7;
    obs::ScopedStatRegistration r1(old_group, registry);
    obs::ScopedStatRegistration r2(new_group, registry);

    EXPECT_EQ(registry.find("cache"), &new_group);
    EXPECT_EQ(registry.value("cache.hits"), 7u);
    EXPECT_EQ(registry.value("cache.absent"), 0u);
    EXPECT_EQ(registry.value("nosuch.hits"), 0u);
}

TEST(StatRegistry, SnapshotCopiesCountersAndDistributions)
{
    obs::StatRegistry registry;
    StatGroup group("mem");
    group.counter("fills") += 12;
    for (uint64_t v = 1; v <= 100; ++v)
        group.distribution("dist").sample(v);
    obs::ScopedStatRegistration reg(group, registry);

    const obs::StatSnapshot snap = registry.snapshot();
    EXPECT_TRUE(snap.hasCounter("mem.fills"));
    EXPECT_EQ(snap.value("mem.fills"), 12u);
    ASSERT_EQ(snap.distributions.count("mem.dist"), 1u);
    const obs::DistSummary &dist = snap.distributions.at("mem.dist");
    EXPECT_EQ(dist.samples, 100u);
    EXPECT_EQ(dist.sum, 5050u);
    EXPECT_EQ(dist.p50, 50u);
    EXPECT_EQ(dist.p90, 90u);
    EXPECT_EQ(dist.p99, 99u);
    EXPECT_EQ(dist.maxValue, 100u);

    // The snapshot must outlive the group.
    group.reset();
    EXPECT_EQ(snap.value("mem.fills"), 12u);
}

TEST(StatRegistry, ExportJsonRoundTrip)
{
    obs::StatRegistry registry;
    StatGroup l2("l2");
    l2.counter("hits") += 42;
    l2.counter("misses") += 13;
    l2.distribution("lat").sample(5);
    l2.distribution("lat").sample(15);
    StatGroup dram("dram");
    dram.counter("transfers") += 9;
    obs::ScopedStatRegistration r1(l2, registry);
    obs::ScopedStatRegistration r2(dram, registry);

    std::ostringstream os;
    registry.exportJson(os);

    std::string error;
    auto doc = obs::parseJson(os.str(), &error);
    ASSERT_TRUE(doc) << error;
    const obs::JsonValue *hits =
        doc->findPath("groups.l2.counters.hits");
    ASSERT_TRUE(hits);
    EXPECT_EQ(hits->asNumber(), 42.0);
    const obs::JsonValue *transfers =
        doc->findPath("groups.dram.counters.transfers");
    ASSERT_TRUE(transfers);
    EXPECT_EQ(transfers->asNumber(), 9.0);
    const obs::JsonValue *samples =
        doc->findPath("groups.l2.distributions.lat.samples");
    ASSERT_TRUE(samples);
    EXPECT_EQ(samples->asNumber(), 2.0);
    const obs::JsonValue *mean =
        doc->findPath("groups.l2.distributions.lat.mean");
    ASSERT_TRUE(mean);
    EXPECT_DOUBLE_EQ(mean->asNumber(), 10.0);
}

TEST(StatRegistry, ExportSuffixesDuplicateNames)
{
    obs::StatRegistry registry;
    StatGroup old_group("cache");
    old_group.counter("hits") += 1;
    StatGroup new_group("cache");
    new_group.counter("hits") += 2;
    obs::ScopedStatRegistration r1(old_group, registry);
    obs::ScopedStatRegistration r2(new_group, registry);

    std::ostringstream os;
    registry.exportJson(os);
    std::string error;
    auto doc = obs::parseJson(os.str(), &error);
    ASSERT_TRUE(doc) << error;
    // The newest registration keeps the bare name; the older one is
    // suffixed so nothing is silently dropped.
    const obs::JsonValue *newest =
        doc->findPath("groups.cache.counters.hits");
    ASSERT_TRUE(newest);
    EXPECT_EQ(newest->asNumber(), 2.0);
    ASSERT_TRUE(doc->findPath("groups"));
    const obs::JsonValue *suffixed =
        doc->findPath("groups")->find("cache#2");
    ASSERT_TRUE(suffixed);
    EXPECT_EQ(suffixed->findPath("counters.hits")->asNumber(), 1.0);
}

TEST(StatRegistry, ExportCsvFormat)
{
    obs::StatRegistry registry;
    StatGroup group("mem");
    group.counter("fills") += 4;
    group.distribution("d").sample(10);
    obs::ScopedStatRegistration reg(group, registry);

    std::ostringstream os;
    registry.exportCsv(os);
    const std::string csv = os.str();
    EXPECT_EQ(csv.rfind("group,stat,value\n", 0), 0u);
    EXPECT_NE(csv.find("mem,fills,4\n"), std::string::npos);
    EXPECT_NE(csv.find("mem,d.samples,1\n"), std::string::npos);
    EXPECT_NE(csv.find("mem,d.p50,10\n"), std::string::npos);
}

TEST(StatRegistry, ResetAll)
{
    obs::StatRegistry registry;
    StatGroup group("g");
    group.counter("c") += 5;
    group.distribution("d").sample(3);
    obs::ScopedStatRegistration reg(group, registry);
    registry.resetAll();
    EXPECT_EQ(group.value("c"), 0u);
    EXPECT_EQ(group.distribution("d").samples(), 0u);
}

TEST(StatRegistry, GlobalSeesEveryMemoryComponent)
{
    const size_t before = obs::StatRegistry::current().size();
    {
        SimConfig config;
        EventQueue events;
        MemorySystem mem(config, events);

        // MemorySystem registers itself, two caches, two MSHR files
        // and the DRAM model.
        EXPECT_GE(obs::StatRegistry::current().size(), before + 6);
        for (const char *name :
             {"mem", "l1d", "l2", "l1dMshrs", "l2Mshrs", "dram"}) {
            EXPECT_NE(obs::StatRegistry::current().find(name), nullptr)
                << name;
        }

        ++mem.stats().counter("demandFills");
        std::ostringstream os;
        obs::StatRegistry::current().exportJson(os);
        std::string error;
        auto doc = obs::parseJson(os.str(), &error);
        ASSERT_TRUE(doc) << error;
        for (const char *name :
             {"mem", "l1d", "l2", "l1dMshrs", "l2Mshrs", "dram"}) {
            EXPECT_TRUE(doc->findPath("groups")->find(name)) << name;
        }
        EXPECT_EQ(
            doc->findPath("groups.mem.counters.demandFills")->asNumber(),
            1.0);
    }
    // Destruction deregisters everything again.
    EXPECT_EQ(obs::StatRegistry::current().size(), before);
}

} // namespace
} // namespace grp
