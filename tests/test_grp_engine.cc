/** @file Unit tests for the GRP engine (the paper's contribution). */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/grp_engine.hh"
#include "mem/dram.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

class GrpEngineTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setQuiet(true);
        config.scheme = PrefetchScheme::GrpVar;
    }

    std::vector<PrefetchCandidate>
    drain(GrpEngine &engine)
    {
        std::vector<PrefetchCandidate> out;
        bool progress = true;
        while (progress) {
            progress = false;
            for (unsigned ch = 0; ch < 4; ++ch) {
                if (auto cand = engine.dequeuePrefetch(dram, ch)) {
                    out.push_back(*cand);
                    progress = true;
                }
            }
        }
        return out;
    }

    SimConfig config;
    FunctionalMemory mem;
    DramSystem dram{DramConfig{}};
};

TEST_F(GrpEngineTest, RequiresAHintScheme)
{
    config.scheme = PrefetchScheme::Srp;
    EXPECT_THROW(GrpEngine(config, mem), std::runtime_error);
}

TEST_F(GrpEngineTest, UnhintedMissesAreIgnored)
{
    GrpEngine engine(config, mem);
    engine.onL2DemandMiss(0x10000, 0, LoadHints{});
    EXPECT_TRUE(drain(engine).empty());
    EXPECT_EQ(engine.stats().value("missesUnhinted"), 1u);
}

TEST_F(GrpEngineTest, SpatialHintTriggersFullRegion)
{
    GrpEngine engine(config, mem);
    LoadHints hints;
    hints.flags = kHintSpatial;
    engine.onL2DemandMiss(0x10000, 0, hints);
    EXPECT_EQ(drain(engine).size(), 63u);
    EXPECT_EQ(engine.stats().value("regionsAllocated"), 1u);
}

TEST_F(GrpEngineTest, SizeHintShrinksRegion)
{
    GrpEngine engine(config, mem);
    LoadHints hints;
    hints.flags = kHintSpatial | kHintSizeValid;
    hints.sizeCoeff = 3;
    hints.loopBound = 16; // 128 B -> 2 blocks.
    engine.onL2DemandMiss(0x10000, 0, hints);
    EXPECT_EQ(drain(engine).size(), 1u); // Window minus miss block.
    EXPECT_EQ(engine.regionSizes().count(2), 1u);
}

TEST_F(GrpEngineTest, FixModeIgnoresSizeHints)
{
    config.scheme = PrefetchScheme::GrpFix;
    GrpEngine engine(config, mem);
    LoadHints hints;
    hints.flags = kHintSpatial | kHintSizeValid;
    hints.sizeCoeff = 3;
    hints.loopBound = 16;
    engine.onL2DemandMiss(0x10000, 0, hints);
    EXPECT_EQ(drain(engine).size(), 63u);
}

TEST_F(GrpEngineTest, PointerFillScansForTargets)
{
    GrpEngine engine(config, mem);
    const Addr node = mem.heapAlloc(64, 64);
    const Addr next = mem.heapAlloc(64, 64);
    mem.write64(node + 16, next);

    engine.onFill(node, /*ptr_depth=*/1, ReqClass::Demand);
    auto candidates = drain(engine);
    // Two blocks per discovered pointer.
    ASSERT_EQ(candidates.size(), 2u);
    std::set<Addr> addrs;
    for (const auto &cand : candidates) {
        addrs.insert(cand.blockAddr);
        // Depth 1 fill spawns depth-0 prefetches: chase terminates.
        EXPECT_EQ(cand.ptrDepth, 0u);
    }
    EXPECT_TRUE(addrs.count(blockAlign(next)));
    EXPECT_TRUE(addrs.count(blockAlign(next) + kBlockBytes));
}

TEST_F(GrpEngineTest, RecursiveFillPropagatesDepth)
{
    GrpEngine engine(config, mem);
    const Addr node = mem.heapAlloc(64, 64);
    const Addr next = mem.heapAlloc(64, 64);
    mem.write64(node, next);
    engine.onFill(node, /*ptr_depth=*/6, ReqClass::Prefetch);
    auto candidates = drain(engine);
    ASSERT_FALSE(candidates.empty());
    for (const auto &cand : candidates)
        EXPECT_EQ(cand.ptrDepth, 5u);
}

TEST_F(GrpEngineTest, ZeroDepthFillDoesNotScan)
{
    GrpEngine engine(config, mem);
    const Addr node = mem.heapAlloc(64, 64);
    mem.write64(node, mem.heapAlloc(64, 64));
    engine.onFill(node, 0, ReqClass::Prefetch);
    EXPECT_TRUE(drain(engine).empty());
    EXPECT_EQ(engine.stats().value("linesScanned"), 0u);
}

TEST_F(GrpEngineTest, IndirectGeneratesScaledTargets)
{
    GrpEngine engine(config, mem);
    // Index array of 16 4-byte entries in one block.
    const Addr index_block = mem.heapAlloc(64, 64);
    for (unsigned i = 0; i < 16; ++i)
        mem.write32(index_block + 4 * i, 100 + i);
    const Addr base = 0x1000'0000;

    engine.indirectPrefetch(base, /*elem_size=*/8,
                            index_block + 20, /*ref=*/7);
    auto candidates = drain(engine);
    // Distinct blocks of base + 8*(100..115); many collapse into
    // the same block.
    std::set<Addr> expected;
    for (unsigned i = 0; i < 16; ++i)
        expected.insert(blockAlign(base + 8 * (100 + i)));
    std::set<Addr> got;
    for (const auto &cand : candidates)
        got.insert(cand.blockAddr);
    EXPECT_EQ(got, expected);
    EXPECT_EQ(engine.stats().value("indirectOps"), 1u);
    EXPECT_EQ(engine.stats().value("indirectTargets"), 16u);
}

TEST_F(GrpEngineTest, IndirectFanoutIsConfigurable)
{
    config.region.indirectFanout = 4;
    GrpEngine engine(config, mem);
    const Addr index_block = mem.heapAlloc(64, 64);
    for (unsigned i = 0; i < 16; ++i)
        mem.write32(index_block + 4 * i, i * 1000);
    engine.indirectPrefetch(0x2000'0000, 8, index_block, 0);
    EXPECT_EQ(engine.stats().value("indirectTargets"), 4u);
}

TEST_F(GrpEngineTest, PresenceTestFiltersRegionWindows)
{
    GrpEngine engine(config, mem);
    engine.setPresenceTest([](Addr) { return true; });
    LoadHints hints;
    hints.flags = kHintSpatial;
    engine.onL2DemandMiss(0x10000, 0, hints);
    EXPECT_TRUE(drain(engine).empty());
}

TEST_F(GrpEngineTest, ResetClearsQueueAndStats)
{
    GrpEngine engine(config, mem);
    LoadHints hints;
    hints.flags = kHintSpatial;
    engine.onL2DemandMiss(0x10000, 0, hints);
    engine.reset();
    EXPECT_TRUE(drain(engine).empty());
    EXPECT_EQ(engine.stats().value("regionsAllocated"), 0u);
    EXPECT_EQ(engine.regionSizes().samples(), 0u);
}

} // namespace
} // namespace grp
