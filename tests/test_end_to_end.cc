/**
 * @file
 * Integration tests: whole-system invariants across workloads and
 * prefetch schemes — the properties the paper's evaluation rests on.
 */

#include <gtest/gtest.h>

#include <map>

#include "harness/suite.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

class EndToEnd : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setQuiet(true);
        opts.maxInstructions = 60'000;
        opts.warmupInstructions = 15'000;
    }

    RunOptions opts;
};

TEST_F(EndToEnd, GzipBaselineRuns)
{
    SimConfig config;
    RunResult result = runWorkload("gzip", config, opts);
    // Retirement is 4-wide, so the window can stop a few
    // instructions either side of the target.
    EXPECT_GE(result.instructions + 4, opts.maxInstructions);
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.ipc, 0.0);
    EXPECT_LE(result.ipc, 4.0); // Issue width bound.
    EXPECT_GT(result.l2DemandAccesses, 0u);
    EXPECT_GT(result.trafficBytes, 0u);
}

TEST_F(EndToEnd, AllWorkloadsRunAllSchemes)
{
    const PrefetchScheme schemes[] = {
        PrefetchScheme::None,      PrefetchScheme::Stride,
        PrefetchScheme::Srp,       PrefetchScheme::GrpFix,
        PrefetchScheme::GrpVar,    PrefetchScheme::PointerHw,
        PrefetchScheme::PointerHwRec,
        PrefetchScheme::SrpPlusPointer,
    };
    RunOptions quick;
    quick.maxInstructions = 15'000;
    quick.warmupInstructions = 0;
    for (const auto &name : workloadNames()) {
        for (PrefetchScheme scheme : schemes) {
            SimConfig config;
            config.scheme = scheme;
            RunResult result = runWorkload(name, config, quick);
            EXPECT_GT(result.instructions, 0u)
                << name << "/" << toString(scheme);
            EXPECT_LE(result.accuracy(), 1.0)
                << name << "/" << toString(scheme);
        }
    }
}

TEST_F(EndToEnd, PerfectCachesDominateBaseline)
{
    for (const char *name : {"gzip", "swim", "mcf", "equake"}) {
        const RunResult base =
            runScheme(name, PrefetchScheme::None, opts);
        const RunResult l2 =
            runPerfect(name, Perfection::PerfectL2, opts);
        const RunResult l1 =
            runPerfect(name, Perfection::PerfectL1, opts);
        EXPECT_GT(l2.ipc, base.ipc * 0.99) << name;
        EXPECT_GT(l1.ipc, l2.ipc * 0.99) << name;
        EXPECT_EQ(l1.trafficBytes, 0u) << name;
        EXPECT_EQ(l2.trafficBytes, 0u) << name;
    }
}

TEST_F(EndToEnd, GrpNeverExceedsSrpTraffic)
{
    // The paper's headline: GRP needs a fraction of SRP's
    // bandwidth. Allow a small tolerance for timing noise.
    for (const char *name : {"gzip", "swim", "mcf", "twolf", "bzip2",
                             "sphinx", "parser", "mesa"}) {
        const RunResult srp = runScheme(name, PrefetchScheme::Srp,
                                        opts);
        const RunResult grp = runScheme(name, PrefetchScheme::GrpVar,
                                        opts);
        EXPECT_LE(grp.trafficBytes,
                  srp.trafficBytes + srp.trafficBytes / 10)
            << name;
    }
}

TEST_F(EndToEnd, VarRegionsNeverExceedFixTraffic)
{
    for (const char *name : {"mesa", "bzip2", "sphinx"}) {
        const RunResult fix = runScheme(name, PrefetchScheme::GrpFix,
                                        opts);
        const RunResult var = runScheme(name, PrefetchScheme::GrpVar,
                                        opts);
        EXPECT_LE(var.trafficBytes,
                  fix.trafficBytes + fix.trafficBytes / 10)
            << name;
    }
}

TEST_F(EndToEnd, SpatialWorkloadsBenefitFromRegionPrefetching)
{
    for (const char *name : {"wupwise", "equake", "mgrid"}) {
        const RunResult base =
            runScheme(name, PrefetchScheme::None, opts);
        const RunResult srp = runScheme(name, PrefetchScheme::Srp,
                                        opts);
        EXPECT_GT(speedup(srp, base), 1.1) << name;
    }
}

TEST_F(EndToEnd, GrpMatchesSrpOnSpatialWorkloads)
{
    for (const char *name : {"wupwise", "equake", "mgrid"}) {
        const RunResult srp = runScheme(name, PrefetchScheme::Srp,
                                        opts);
        const RunResult grp = runScheme(name, PrefetchScheme::GrpVar,
                                        opts);
        EXPECT_GT(grp.ipc, srp.ipc * 0.93) << name;
    }
}

TEST_F(EndToEnd, PrefetchingNeverBreaksCorrectness)
{
    // The trace and its functional effects are identical across
    // schemes: instruction counts must match exactly.
    const RunResult base = runScheme("mcf", PrefetchScheme::None,
                                     opts);
    const RunResult srp = runScheme("mcf", PrefetchScheme::Srp, opts);
    // Retirement is 4-wide, so windows can differ by a few
    // instructions at each boundary — never by more.
    const int64_t delta = static_cast<int64_t>(base.instructions) -
                          static_cast<int64_t>(srp.instructions);
    EXPECT_LE(delta < 0 ? -delta : delta, 8);
}

TEST_F(EndToEnd, CoverageIsBoundedByBaseMisses)
{
    for (const char *name : {"wupwise", "bzip2"}) {
        const RunResult base =
            runScheme(name, PrefetchScheme::None, opts);
        const RunResult grp = runScheme(name, PrefetchScheme::GrpVar,
                                        opts);
        EXPECT_LE(grp.coveragePct(base), 100.0) << name;
    }
}

TEST_F(EndToEnd, RegionSizeDistributionOnlyForGrp)
{
    const RunResult srp = runScheme("mesa", PrefetchScheme::Srp,
                                    opts);
    EXPECT_TRUE(srp.regionSizes.empty());
    const RunResult var = runScheme("mesa", PrefetchScheme::GrpVar,
                                    opts);
    ASSERT_FALSE(var.regionSizes.empty());
    // mesa's variable regions are dominated by 2-block windows.
    uint64_t total = 0;
    for (const auto &[blocks, count] : var.regionSizes)
        total += count;
    ASSERT_GT(total, 0u);
    const auto it = var.regionSizes.find(2);
    ASSERT_NE(it, var.regionSizes.end());
    EXPECT_GT(static_cast<double>(it->second) /
                  static_cast<double>(total),
              0.5);
}

TEST_F(EndToEnd, CompilerPolicyMovesTraffic)
{
    SimConfig conservative;
    conservative.scheme = PrefetchScheme::GrpVar;
    conservative.policy = CompilerPolicy::Conservative;
    SimConfig aggressive = conservative;
    aggressive.policy = CompilerPolicy::Aggressive;
    const RunResult cons = runWorkload("art", conservative, opts);
    const RunResult aggr = runWorkload("art", aggressive, opts);
    // The aggressive policy marks art's big-volume transposes and
    // pays for it in traffic (§5.4).
    EXPECT_GT(aggr.trafficBytes, cons.trafficBytes);
}

TEST_F(EndToEnd, HintStatsArePropagatedIntoResults)
{
    const RunResult grp = runScheme("mcf", PrefetchScheme::GrpVar,
                                    opts);
    EXPECT_GT(grp.hints.memInsts, 0u);
    EXPECT_GT(grp.hints.recursive, 0u);
    EXPECT_EQ(grp.info.name, "mcf");
}

TEST_F(EndToEnd, SuiteGroupingsPartitionTheBenchmarks)
{
    const auto ints = intSuite();
    const auto fps = fpSuite();
    EXPECT_EQ(ints.size() + fps.size(), perfSuite().size());
    EXPECT_EQ(perfSuite().size(), 17u); // crafty excluded.
}

} // namespace
} // namespace grp
