/** @file Tests for the cycle-bucketed time-series sampler: the JSON
 *  schema round-trips through the in-tree reader, the harness
 *  samples on the configured cadence, and degenerate configurations
 *  (no samples, zero bucket) behave. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "harness/runner.hh"
#include "obs/json_reader.hh"
#include "obs/timeseries.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

std::unique_ptr<obs::JsonValue>
parseFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    auto doc = obs::parseJson(text.str(), &error);
    EXPECT_TRUE(doc) << error;
    return doc;
}

TEST(TimeSeries, JsonRoundTrip)
{
    obs::TimeSeries series(64);
    series.record("depth", 0, 3.0);
    series.record("depth", 64, 5.5);
    series.record("busy", 0, 1.0);

    std::ostringstream os;
    series.exportJson(os);
    std::string error;
    auto doc = obs::parseJson(os.str(), &error);
    ASSERT_TRUE(doc) << error;

    const obs::JsonValue *schema = doc->find("schema");
    ASSERT_TRUE(schema);
    EXPECT_EQ(schema->asString(), "grp-timeseries-v1");
    const obs::JsonValue *bucket = doc->find("bucket");
    ASSERT_TRUE(bucket);
    EXPECT_EQ(bucket->asNumber(), 64.0);

    const obs::JsonValue *depth = doc->findPath("series.depth");
    ASSERT_TRUE(depth);
    ASSERT_EQ(depth->find("t")->asArray().size(), 2u);
    EXPECT_EQ(depth->find("t")->asArray()[1].asNumber(), 64.0);
    EXPECT_EQ(depth->find("v")->asArray()[1].asNumber(), 5.5);
    const obs::JsonValue *busy = doc->findPath("series.busy");
    ASSERT_TRUE(busy);
    ASSERT_EQ(busy->find("v")->asArray().size(), 1u);
}

TEST(TimeSeries, EmptyRunExportsValidJson)
{
    obs::TimeSeries series(128);
    std::ostringstream os;
    series.exportJson(os);
    std::string error;
    auto doc = obs::parseJson(os.str(), &error);
    ASSERT_TRUE(doc) << error;
    const obs::JsonValue *all = doc->find("series");
    ASSERT_TRUE(all);
    EXPECT_TRUE(all->isObject());
    EXPECT_TRUE(all->asObject().empty());
    EXPECT_EQ(series.seriesCount(), 0u);
    EXPECT_EQ(series.samples("anything"), 0u);
}

TEST(TimeSeries, ZeroBucketIsFatal)
{
    setQuiet(true);
    EXPECT_THROW(obs::TimeSeries series(0), std::runtime_error);
}

TEST(TimeSeries, HarnessSamplesOnTheBucketCadence)
{
    setQuiet(true);
    const std::string path =
        ::testing::TempDir() + "grp_timeseries_cadence.json";
    SimConfig config;
    config.scheme = PrefetchScheme::GrpVar;
    RunOptions opts;
    opts.maxInstructions = 30'000;
    opts.obs.timeseriesPath = path;
    opts.obs.timeseriesBucket = 256;
    runWorkload("mcf", config, opts);

    auto doc = parseFile(path);
    ASSERT_TRUE(doc);
    EXPECT_EQ(doc->find("bucket")->asNumber(), 256.0);
    const obs::JsonValue *all = doc->find("series");
    ASSERT_TRUE(all && all->isObject());
    // The harness records every signal each time the bucket fires,
    // so all series align tick-for-tick on multiples of the bucket.
    ASSERT_FALSE(all->asObject().empty());
    size_t expected = 0;
    for (const auto &[name, series] : all->asObject()) {
        const auto &ticks = series.find("t")->asArray();
        const auto &values = series.find("v")->asArray();
        ASSERT_FALSE(ticks.empty()) << name;
        EXPECT_EQ(ticks.size(), values.size()) << name;
        if (!expected)
            expected = ticks.size();
        EXPECT_EQ(ticks.size(), expected) << name;
        for (size_t i = 0; i < ticks.size(); ++i) {
            const auto tick =
                static_cast<uint64_t>(ticks[i].asNumber());
            EXPECT_EQ(tick % 256, 0u) << name;
            if (i > 0)
                EXPECT_GT(tick, static_cast<uint64_t>(
                                    ticks[i - 1].asNumber()))
                    << name;
        }
    }
    // Expected sample count: one per bucket boundary reached.
    EXPECT_GT(expected, 1u);
    std::remove(path.c_str());
}

} // namespace
} // namespace grp
