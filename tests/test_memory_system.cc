/** @file Integration tests for the memory hierarchy timing model. */

#include <gtest/gtest.h>

#include <vector>

#include "core/engine_factory.hh"
#include "mem/memory_system.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

class MemorySystemTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setQuiet(true);
        mem = std::make_unique<MemorySystem>(config, events);
        mem->setLoadCallback(
            [this](uint64_t token) { completed.push_back(token); });
    }

    void
    runTo(Tick when)
    {
        for (Tick t = events.curTick(); t <= when; ++t) {
            events.advanceTo(t);
            mem->tick();
        }
    }

    /** Run until the load with @p token completes; returns the
     *  completion tick. */
    Tick
    runUntilDone(uint64_t token, Tick limit = 10'000)
    {
        for (Tick t = events.curTick(); t <= limit; ++t) {
            events.advanceTo(t);
            mem->tick();
            for (uint64_t done : completed) {
                if (done == token)
                    return t;
            }
        }
        ADD_FAILURE() << "load " << token << " never completed";
        return 0;
    }

    SimConfig config;
    EventQueue events;
    std::unique_ptr<MemorySystem> mem;
    std::vector<uint64_t> completed;
};

TEST_F(MemorySystemTest, ColdLoadPaysDramLatency)
{
    ASSERT_TRUE(mem->load(0x10000, 0, {}, 1));
    const Tick done = runUntilDone(1);
    // At least row conflict + transfer + L1 fill.
    EXPECT_GE(done, config.dram.rowConflictCycles +
                        config.dram.transferCycles);
    EXPECT_EQ(mem->stats().value("demandToMemory"), 1u);
    EXPECT_EQ(mem->trafficBytes(), kBlockBytes);
}

TEST_F(MemorySystemTest, L1HitIsFast)
{
    ASSERT_TRUE(mem->load(0x10000, 0, {}, 1));
    runUntilDone(1);
    completed.clear();
    ASSERT_TRUE(mem->load(0x10008, 0, {}, 2));
    const Tick start = events.curTick();
    const Tick done = runUntilDone(2);
    EXPECT_LE(done - start, config.l1d.latency + 1);
    // No new memory traffic.
    EXPECT_EQ(mem->trafficBytes(), kBlockBytes);
}

TEST_F(MemorySystemTest, L2HitAvoidsDram)
{
    ASSERT_TRUE(mem->load(0x10000, 0, {}, 1));
    runUntilDone(1);
    // Evict from L1 by filling its set: L1 is 64 KB 2-way -> 512
    // sets; same set repeats every 32 KB.
    ASSERT_TRUE(mem->load(0x10000 + 32 * 1024, 0, {}, 2));
    runUntilDone(2);
    ASSERT_TRUE(mem->load(0x10000 + 64 * 1024, 0, {}, 3));
    runUntilDone(3);
    completed.clear();
    const uint64_t traffic_before = mem->trafficBytes();
    ASSERT_TRUE(mem->load(0x10000, 0, {}, 4));
    const Tick start = events.curTick();
    const Tick done = runUntilDone(4);
    EXPECT_LE(done - start, config.l1d.latency + config.l2.latency + 2);
    EXPECT_EQ(mem->trafficBytes(), traffic_before);
}

TEST_F(MemorySystemTest, CoalescedLoadsShareOneFill)
{
    ASSERT_TRUE(mem->load(0x20000, 0, {}, 1));
    ASSERT_TRUE(mem->load(0x20008, 0, {}, 2));
    runUntilDone(1);
    runUntilDone(2);
    EXPECT_EQ(mem->stats().value("demandToMemory"), 1u);
}

TEST_F(MemorySystemTest, MshrExhaustionStallsNewMisses)
{
    // 8 L1 MSHRs: the ninth distinct-block miss must be refused.
    for (unsigned i = 0; i < 8; ++i)
        ASSERT_TRUE(mem->load(0x40000 + i * kBlockBytes, 0, {}, i));
    EXPECT_FALSE(mem->load(0x80000, 0, {}, 99));
    EXPECT_GT(mem->stats().value("l1MshrStalls"), 0u);
    runUntilDone(7);
    EXPECT_TRUE(mem->load(0x80000, 0, {}, 99));
}

TEST_F(MemorySystemTest, StoresWriteAllocateAndWriteBack)
{
    ASSERT_TRUE(mem->store(0x30000, 0, {}));
    runTo(2000);
    EXPECT_EQ(mem->stats().value("demandToMemory"), 1u);

    // Push the dirty line out of the L1 (32 KB apart -> same set)
    // and then out of the L2 (256 KB apart -> same L2 set).
    for (unsigned i = 1; i <= 2; ++i) {
        ASSERT_TRUE(
            mem->load(0x30000 + i * 32 * 1024, 0, {}, 100 + i));
        runUntilDone(100 + i);
    }
    for (unsigned i = 1; i <= 4; ++i) {
        ASSERT_TRUE(
            mem->load(0x30000 + i * 256 * 1024, 0, {}, 200 + i));
        runUntilDone(200 + i);
    }
    runTo(events.curTick() + 2000);
    EXPECT_GE(mem->stats().value("writebacksQueued"), 1u);
    EXPECT_GE(mem->stats().value("writebacks"), 1u);
}

TEST_F(MemorySystemTest, PerfectL1NeverTouchesMemory)
{
    config.perfection = Perfection::PerfectL1;
    MemorySystem perfect(config, events);
    std::vector<uint64_t> done;
    perfect.setLoadCallback(
        [&done](uint64_t token) { done.push_back(token); });
    ASSERT_TRUE(perfect.load(0xdeadbe00, 0, {}, 1));
    ASSERT_TRUE(perfect.store(0xdeadbe40, 0, {}));
    for (Tick t = 0; t < 20; ++t) {
        events.advanceTo(events.curTick() + 1);
        perfect.tick();
    }
    EXPECT_EQ(done.size(), 1u);
    EXPECT_EQ(perfect.trafficBytes(), 0u);
}

TEST_F(MemorySystemTest, PerfectL2NeverTouchesMemory)
{
    config.perfection = Perfection::PerfectL2;
    MemorySystem perfect(config, events);
    std::vector<uint64_t> done;
    perfect.setLoadCallback(
        [&done](uint64_t token) { done.push_back(token); });
    ASSERT_TRUE(perfect.load(0x123400, 0, {}, 1));
    for (Tick t = 0; t < 100 && done.empty(); ++t) {
        events.advanceTo(events.curTick() + 1);
        perfect.tick();
    }
    EXPECT_EQ(done.size(), 1u);
    EXPECT_EQ(perfect.trafficBytes(), 0u);
}

TEST_F(MemorySystemTest, QuiescedTracksOutstandingWork)
{
    EXPECT_TRUE(mem->quiesced());
    ASSERT_TRUE(mem->load(0x50000, 0, {}, 1));
    EXPECT_FALSE(mem->quiesced());
    runUntilDone(1);
    runTo(events.curTick() + 1);
    EXPECT_TRUE(mem->quiesced());
}

class SrpIntegration : public MemorySystemTest
{
  protected:
    void SetUp() override
    {
        setQuiet(true);
        config.scheme = PrefetchScheme::Srp;
        mem = std::make_unique<MemorySystem>(config, events);
        mem->setLoadCallback(
            [this](uint64_t token) { completed.push_back(token); });
        engine = makePrefetchEngine(config, fmem, *mem);
    }

    FunctionalMemory fmem;
    std::unique_ptr<PrefetchEngine> engine;
};

TEST_F(SrpIntegration, MissTriggersRegionPrefetching)
{
    ASSERT_TRUE(mem->load(0x100000, 0, {}, 1));
    runUntilDone(1);
    runTo(events.curTick() + 5000); // Idle: prefetcher works.
    EXPECT_GT(mem->stats().value("prefetchesIssued"), 0u);
    EXPECT_GT(mem->stats().value("prefetchFills"), 0u);
    // The prefetched neighbour now hits in the L2.
    completed.clear();
    const uint64_t to_memory = mem->stats().value("demandToMemory");
    ASSERT_TRUE(mem->load(0x100000 + kBlockBytes, 0, {}, 2));
    runUntilDone(2);
    EXPECT_EQ(mem->stats().value("demandToMemory"), to_memory);
    EXPECT_GT(mem->l2().stats().value("prefetchHits"), 0u);
}

TEST_F(SrpIntegration, PrefetchesWaitForDemandToDrain)
{
    // Queue a demand and a region together; while the demand is in
    // flight no prefetch may issue.
    ASSERT_TRUE(mem->load(0x200000, 0, {}, 1));
    events.advanceTo(1);
    mem->tick(); // Demand starts on its channel.
    EXPECT_EQ(mem->stats().value("prefetchesIssued"), 0u);
    runUntilDone(1);
    runTo(events.curTick() + 3000);
    EXPECT_GT(mem->stats().value("prefetchesIssued"), 0u);
    EXPECT_GT(mem->stats().value("prefetchDemandThrottled"), 0u);
}

TEST_F(SrpIntegration, TrafficCountsPrefetches)
{
    ASSERT_TRUE(mem->load(0x300000, 0, {}, 1));
    runUntilDone(1);
    runTo(events.curTick() + 20'000);
    const uint64_t fills = mem->stats().value("demandFills") +
                           mem->stats().value("prefetchFills") +
                           mem->stats().value("writebacks");
    EXPECT_EQ(mem->trafficBytes(), fills * kBlockBytes);
    // A full region should eventually be fetched.
    EXPECT_EQ(mem->stats().value("prefetchFills"), 63u);
}

} // namespace
} // namespace grp
