/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "sim/rng.hh"

namespace grp
{
namespace
{

TEST(Rng, DeterministicForSeed)
{
    Rng a(7), b(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(7), b(8);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(13);
    for (int i = 0; i < 10'000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeStaysInRange)
{
    Rng rng(13);
    for (int i = 0; i < 10'000; ++i) {
        const uint64_t value = rng.range(100, 200);
        EXPECT_GE(value, 100u);
        EXPECT_LT(value, 200u);
    }
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(99);
    double sum = 0.0;
    for (int i = 0; i < 10'000; ++i) {
        const double real = rng.real();
        EXPECT_GE(real, 0.0);
        EXPECT_LT(real, 1.0);
        sum += real;
    }
    EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng rng(5);
    int hits = 0;
    for (int i = 0; i < 10'000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 10'000.0, 0.25, 0.03);
}

TEST(Rng, ReseedRestoresSequence)
{
    Rng rng(21);
    const uint64_t first = rng.next();
    rng.next();
    rng.reseed(21);
    EXPECT_EQ(rng.next(), first);
}

TEST(Rng, CoversLowValues)
{
    // All residues of a small modulus appear.
    Rng rng(3);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i)
        seen[rng.below(8)] = true;
    for (bool hit : seen)
        EXPECT_TRUE(hit);
}

} // namespace
} // namespace grp
