/**
 * @file
 * The stall fast-forward equivalence contract: with GRP_FAST_FORWARD
 * on (the default) the runner batch-applies skipped stall cycles, and
 * every exported statistic must come out exactly as if each cycle had
 * been ticked individually. These tests run the same configurations
 * with the fast-forward enabled and disabled and require the full
 * counter snapshots to be equal, and check that the deadlock watchdog
 * still fires from a fast-forwarded stall.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>

#include "cpu/cpu.hh"
#include "harness/suite.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

/** Counter snapshot without the hostProf group (wall-clock phase
 *  accounting legitimately differs between the two stepping modes). */
std::map<std::string, uint64_t>
simCounters(const RunResult &result)
{
    std::map<std::string, uint64_t> out;
    for (const auto &[name, value] : result.stats.counters) {
        if (name.rfind("hostProf.", 0) != 0)
            out.emplace(name, value);
    }
    return out;
}

class FastForwardEquivalence
    : public ::testing::TestWithParam<PrefetchScheme>
{
  protected:
    void SetUp() override
    {
        setQuiet(true);
        opts.maxInstructions = 30'000;
        opts.warmupInstructions = 5'000;
    }

    void TearDown() override { unsetenv("GRP_FAST_FORWARD"); }

    RunResult
    runWith(const char *workload, const char *fast_forward)
    {
        setenv("GRP_FAST_FORWARD", fast_forward, 1);
        return runScheme(workload, GetParam(), opts);
    }

    RunOptions opts;
};

TEST_P(FastForwardEquivalence, StatsAreIdenticalToPerCycleStepping)
{
    for (const char *workload : {"mcf", "art"}) {
        const RunResult ff = runWith(workload, "1");
        const RunResult step = runWith(workload, "0");
        EXPECT_EQ(ff.instructions, step.instructions) << workload;
        EXPECT_EQ(ff.cycles, step.cycles) << workload;
        EXPECT_EQ(ff.trafficBytes, step.trafficBytes) << workload;
        EXPECT_EQ(simCounters(ff), simCounters(step)) << workload;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, FastForwardEquivalence,
    ::testing::Values(PrefetchScheme::None, PrefetchScheme::Srp,
                      PrefetchScheme::GrpVar,
                      PrefetchScheme::GrpAdaptive),
    [](const ::testing::TestParamInfo<PrefetchScheme> &info) {
        std::string name = toString(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

/** A canned trace source (one op per next() call). */
class VectorTrace : public TraceSource
{
  public:
    explicit VectorTrace(std::vector<TraceOp> ops)
        : ops_(std::move(ops))
    {
    }

    bool
    next(TraceOp &op) override
    {
        if (pos_ >= ops_.size())
            return false;
        op = ops_[pos_++];
        return true;
    }

  private:
    std::vector<TraceOp> ops_;
    size_t pos_ = 0;
};

/**
 * The watchdog survives fast-forwarding: the runner clamps every
 * skip at Cpu::deadlockTick(), so a genuinely wedged pipeline (here:
 * a load whose memory system is never ticked, so the demand never
 * reaches DRAM) panics on the first real tick at the clamp instead
 * of being skipped past silently.
 */
TEST(FastForwardDeadlock, WatchdogFiresAtTheSkipClamp)
{
    setQuiet(true);
    SimConfig config;
    config.deadlockCycles = 1'000;

    EventQueue events;
    MemorySystem mem(config, events);
    VectorTrace trace({TraceOp::load(0x10000, 0)});
    Cpu cpu(config, mem, events, trace, nullptr);

    // Issue the load (an L1/L2 miss that queues a DRAM demand which
    // is never served) and drain the trace.
    Tick cycle = 0;
    for (; cycle < 4; ++cycle) {
        events.advanceTo(cycle);
        cpu.tick();
    }

    // The pipeline is now a pure stall the runner would fast-forward.
    const Cpu::StallState st = cpu.stallState(cycle - 1);
    ASSERT_TRUE(st.stalled);
    ASSERT_EQ(st.readyTick, kMaxTick); // Waiting on the lost load.

    // Skip exactly to the watchdog clamp, as the runner does...
    const Tick target = cpu.deadlockTick();
    ASSERT_GT(target, cycle);
    cpu.fastForward(target - cycle, st.robFullPath);
    cycle = target;

    // ...and the first per-cycle tick at the clamp must panic.
    events.advanceTo(cycle);
    EXPECT_THROW(cpu.tick(), std::logic_error);
}

} // namespace
} // namespace grp
