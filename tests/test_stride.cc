/** @file Unit tests for the stride prefetcher baseline. */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "prefetch/stride.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

class StrideTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setQuiet(true);
        config.scheme = PrefetchScheme::Stride;
    }

    /** Feed a strided miss stream for one ref. */
    void
    train(StridePrefetcher &pf, RefId ref, Addr base, int64_t stride,
          int n, bool hit = false)
    {
        for (int i = 0; i < n; ++i)
            pf.onL2DemandAccess(base + static_cast<Addr>(i * stride),
                                ref, {}, hit);
    }

    std::optional<PrefetchCandidate>
    pull(StridePrefetcher &pf)
    {
        for (unsigned ch = 0; ch < 4; ++ch) {
            if (auto cand = pf.dequeuePrefetch(dram, ch))
                return cand;
        }
        return std::nullopt;
    }

    SimConfig config;
    DramSystem dram{DramConfig{}};
};

TEST_F(StrideTest, LearnsAStride)
{
    StridePrefetcher pf(config);
    train(pf, 3, 0x10000, 256, 4);
    EXPECT_EQ(pf.strideFor(3), 256);
}

TEST_F(StrideTest, NoStreamWithoutConfidence)
{
    StridePrefetcher pf(config);
    pf.onL2DemandAccess(0x1000, 1, {}, false);
    pf.onL2DemandAccess(0x2000, 1, {}, false);
    // Only one delta observed: not confident yet.
    EXPECT_EQ(pf.liveStreams(), 0u);
    EXPECT_FALSE(pull(pf).has_value());
}

TEST_F(StrideTest, ConfidentMissAllocatesStream)
{
    StridePrefetcher pf(config);
    train(pf, 1, 0x10000, 192, 5);
    EXPECT_EQ(pf.liveStreams(), 1u);
    auto cand = pull(pf);
    ASSERT_TRUE(cand.has_value());
    // First prefetch lands one block-rounded stride ahead.
    EXPECT_GT(cand->blockAddr, blockAlign(0x10000 + 4 * 192));
}

TEST_F(StrideTest, SmallStridesRoundToOneBlock)
{
    StridePrefetcher pf(config);
    train(pf, 1, 0x20000, 8, 6);
    auto cand = pull(pf);
    ASSERT_TRUE(cand.has_value());
    EXPECT_EQ(cand->blockAddr,
              blockAlign(0x20000 + 5 * 8) + kBlockBytes);
}

TEST_F(StrideTest, NegativeStrideStreams)
{
    StridePrefetcher pf(config);
    train(pf, 1, 0x40000, -64, 6);
    auto cand = pull(pf);
    ASSERT_TRUE(cand.has_value());
    // One block below the lowest demand access so far.
    EXPECT_LE(cand->blockAddr, 0x40000u - 5 * 64);
}

TEST_F(StrideTest, LookaheadIsBounded)
{
    StridePrefetcher pf(config);
    train(pf, 1, 0x30000, 64, 5);
    unsigned issued = 0;
    while (pull(pf).has_value())
        ++issued;
    EXPECT_LE(issued, config.stride.bufferEntries);
}

TEST_F(StrideTest, DemandConsumptionReplenishes)
{
    StridePrefetcher pf(config);
    train(pf, 1, 0x30000, 64, 5);
    while (pull(pf).has_value()) {
    }
    // Demand catches up: two more accesses (hits now).
    pf.onL2DemandAccess(0x30000 + 5 * 64, 1, {}, true);
    EXPECT_TRUE(pull(pf).has_value());
}

TEST_F(StrideTest, StreamStopsAtPageBoundary)
{
    StridePrefetcher pf(config);
    // Miss just below a 4 KB boundary.
    const Addr base = 0x30000 + kRegionBytes - 5 * 64;
    train(pf, 1, base, 64, 5);
    unsigned issued = 0;
    while (pull(pf).has_value())
        ++issued;
    // The stream may cover at most the blocks left in the page.
    EXPECT_LE(issued, 5u);
    EXPECT_EQ(pf.liveStreams(), 0u);
    EXPECT_GT(pf.stats().value("pageBoundaryStops"), 0u);
}

TEST_F(StrideTest, LongStridesCrossPages)
{
    StridePrefetcher pf(config);
    train(pf, 1, 0x100000, 8192, 5); // 2 pages per step.
    unsigned issued = 0;
    while (pull(pf).has_value())
        ++issued;
    EXPECT_EQ(issued, config.stride.bufferEntries);
}

TEST_F(StrideTest, StrideChangeResetsConfidence)
{
    StridePrefetcher pf(config);
    train(pf, 1, 0x50000, 64, 4);
    pf.onL2DemandAccess(0x90000, 1, {}, false); // Break the pattern.
    pf.onL2DemandAccess(0x90040, 1, {}, false);
    // One confirmation of the new stride is below the threshold, so
    // the learned stride is the new one but unconfident.
    EXPECT_EQ(pf.strideFor(1), 64);
}

TEST_F(StrideTest, StreamsAreSharedAcrossRefs)
{
    StridePrefetcher pf(config);
    for (RefId ref = 0; ref < 12; ++ref)
        train(pf, ref, 0x100000 + 0x10000ull * ref, 64, 5);
    EXPECT_LE(pf.liveStreams(), config.stride.streamBuffers);
}

TEST_F(StrideTest, InvalidRefIsIgnored)
{
    StridePrefetcher pf(config);
    pf.onL2DemandAccess(0x1000, kInvalidRefId, {}, false);
    EXPECT_EQ(pf.liveStreams(), 0u);
}

TEST_F(StrideTest, CandidatesMatchRequestedChannel)
{
    StridePrefetcher pf(config);
    train(pf, 1, 0x60000, 64, 5);
    for (unsigned ch = 0; ch < 4; ++ch) {
        auto cand = pf.dequeuePrefetch(dram, ch);
        if (cand)
            EXPECT_EQ(dram.channelOf(cand->blockAddr), ch);
    }
}

TEST_F(StrideTest, ResetClearsState)
{
    StridePrefetcher pf(config);
    train(pf, 1, 0x60000, 64, 5);
    pf.reset();
    EXPECT_EQ(pf.liveStreams(), 0u);
    EXPECT_EQ(pf.strideFor(1), 0);
    EXPECT_FALSE(pull(pf).has_value());
}

} // namespace
} // namespace grp
