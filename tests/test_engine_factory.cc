/** @file Unit tests for the prefetch-engine factory wiring. */

#include <gtest/gtest.h>

#include "core/engine_factory.hh"
#include "core/grp_engine.hh"
#include "prefetch/hw_engine.hh"
#include "prefetch/stride.hh"
#include "prefetch/throttled_srp.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

class EngineFactoryTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }

    std::unique_ptr<PrefetchEngine>
    make(PrefetchScheme scheme)
    {
        config.scheme = scheme;
        mem = std::make_unique<MemorySystem>(config, events);
        return makePrefetchEngine(config, fmem, *mem);
    }

    SimConfig config;
    EventQueue events;
    FunctionalMemory fmem;
    std::unique_ptr<MemorySystem> mem;
};

TEST_F(EngineFactoryTest, NoneYieldsNoEngine)
{
    EXPECT_EQ(make(PrefetchScheme::None), nullptr);
}

TEST_F(EngineFactoryTest, SchemeToEngineTypeMapping)
{
    EXPECT_NE(dynamic_cast<StridePrefetcher *>(
                  make(PrefetchScheme::Stride).get()),
              nullptr);
    EXPECT_NE(dynamic_cast<HwPrefetchEngine *>(
                  make(PrefetchScheme::Srp).get()),
              nullptr);
    EXPECT_NE(dynamic_cast<HwPrefetchEngine *>(
                  make(PrefetchScheme::PointerHw).get()),
              nullptr);
    EXPECT_NE(dynamic_cast<HwPrefetchEngine *>(
                  make(PrefetchScheme::SrpPlusPointer).get()),
              nullptr);
    EXPECT_NE(dynamic_cast<ThrottledSrpEngine *>(
                  make(PrefetchScheme::SrpThrottled).get()),
              nullptr);
    EXPECT_NE(dynamic_cast<GrpEngine *>(
                  make(PrefetchScheme::GrpFix).get()),
              nullptr);
    EXPECT_NE(dynamic_cast<GrpEngine *>(
                  make(PrefetchScheme::GrpVar).get()),
              nullptr);
}

TEST_F(EngineFactoryTest, PresenceTestSeesTheL2)
{
    auto engine = make(PrefetchScheme::Srp);
    auto *hw = dynamic_cast<HwPrefetchEngine *>(engine.get());
    ASSERT_NE(hw, nullptr);
    // Pre-fill the L2 with the whole region except one block: the
    // region allocation must exclude the present blocks.
    const Addr region = 0x100000;
    for (unsigned i = 1; i < kBlocksPerRegion; ++i) {
        if (i != 5)
            mem->l2().insert(region + i * kBlockBytes, false, false);
    }
    hw->onL2DemandMiss(region, 0, {});
    DramSystem probe{DramConfig{}};
    unsigned offered = 0;
    for (int draw = 0; draw < 70; ++draw) {
        for (unsigned ch = 0; ch < 4; ++ch) {
            auto cand = hw->dequeuePrefetch(probe, ch);
            if (cand) {
                ++offered;
                EXPECT_EQ(cand->blockAddr,
                          region + 5 * kBlockBytes);
            }
        }
    }
    EXPECT_EQ(offered, 1u);
}

TEST_F(EngineFactoryTest, EngineIsAttachedToTheMemorySystem)
{
    auto engine = make(PrefetchScheme::Srp);
    // A demand miss must reach the engine: drive one load through.
    std::vector<uint64_t> done;
    mem->setLoadCallback([&](uint64_t token) { done.push_back(token); });
    ASSERT_TRUE(mem->load(0x200000, 0, {}, 1));
    for (Tick t = 0; t < 5'000 && done.empty(); ++t) {
        events.advanceTo(t);
        mem->tick();
    }
    ASSERT_FALSE(done.empty());
    auto *hw = dynamic_cast<HwPrefetchEngine *>(engine.get());
    ASSERT_NE(hw, nullptr);
    EXPECT_EQ(hw->stats().value("regionsAllocated"), 1u);
}

} // namespace
} // namespace grp
