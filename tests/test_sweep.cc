/**
 * @file
 * Sweep-executor tests: the determinism invariant (parallel results
 * are exactly the serial results), outcome ordering, exception
 * capture, and concurrent StatRegistry isolation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/sweep.hh"
#include "mem/cache.hh"
#include "obs/stat_registry.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

RunOptions
quickOptions()
{
    RunOptions opts;
    opts.maxInstructions = 30'000;
    opts.warmupInstructions = 7'500;
    return opts;
}

std::vector<SweepJob>
fourJobs()
{
    const RunOptions opts = quickOptions();
    std::vector<SweepJob> jobs;
    const struct
    {
        const char *workload;
        PrefetchScheme scheme;
    } grid[] = {
        {"gzip", PrefetchScheme::None},
        {"mcf", PrefetchScheme::Srp},
        {"equake", PrefetchScheme::GrpVar},
        {"twolf", PrefetchScheme::Stride},
    };
    for (const auto &cell : grid) {
        jobs.push_back(SweepJob{
            std::string(cell.workload) + "/" + toString(cell.scheme),
            [workload = std::string(cell.workload),
             scheme = cell.scheme, opts] {
                SimConfig config;
                config.scheme = scheme;
                return runWorkload(workload, config, opts);
            }});
    }
    return jobs;
}

void
expectResultsEqual(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.trafficBytes, b.trafficBytes);
    EXPECT_EQ(a.l2DemandAccesses, b.l2DemandAccesses);
    EXPECT_EQ(a.l2MissesTotal, b.l2MissesTotal);
    EXPECT_EQ(a.l2MissesToMemory, b.l2MissesToMemory);
    EXPECT_EQ(a.prefetchFills, b.prefetchFills);
    EXPECT_EQ(a.usefulPrefetches, b.usefulPrefetches);
    EXPECT_EQ(a.warmupUsefulPrefetches, b.warmupUsefulPrefetches);
    EXPECT_EQ(a.regionSizes, b.regionSizes);
    // Every counter the simulation registered, not just the headline
    // scalars: any cross-job interference shows up here first.
    EXPECT_EQ(a.stats.counters, b.stats.counters);
    ASSERT_EQ(a.stats.distributions.size(),
              b.stats.distributions.size());
    auto bit = b.stats.distributions.begin();
    for (const auto &[name, dist] : a.stats.distributions) {
        EXPECT_EQ(name, bit->first);
        EXPECT_EQ(dist.samples, bit->second.samples);
        EXPECT_EQ(dist.sum, bit->second.sum);
        EXPECT_EQ(dist.maxValue, bit->second.maxValue);
        ++bit;
    }
}

TEST(Sweep, ParallelMatchesSerialExactly)
{
    setQuiet(true);
    const std::vector<SweepOutcome> serial = runSweep(fourJobs(), 1);
    const std::vector<SweepOutcome> parallel =
        runSweep(fourJobs(), 4);

    ASSERT_EQ(serial.size(), 4u);
    ASSERT_EQ(parallel.size(), 4u);
    for (size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(serial[i].label);
        EXPECT_FALSE(serial[i].failed) << serial[i].error;
        EXPECT_FALSE(parallel[i].failed) << parallel[i].error;
        EXPECT_EQ(serial[i].label, parallel[i].label);
        expectResultsEqual(serial[i].result, parallel[i].result);
    }
}

// The adaptive controller reads only per-run state, so a GrpAdaptive
// sweep must stay bit-identical at any thread count — including the
// controller's own stat group (epochs, transitions, time-in-state).
TEST(Sweep, AdaptiveSchemeIsDeterministicAcrossThreadCounts)
{
    setQuiet(true);
    const RunOptions opts = quickOptions();
    auto jobs = [&] {
        std::vector<SweepJob> out;
        for (const char *workload : {"mcf", "equake", "twolf"}) {
            out.push_back(SweepJob{
                std::string(workload) + "/grp-adaptive",
                [workload = std::string(workload), opts] {
                    SimConfig config;
                    config.scheme = PrefetchScheme::GrpAdaptive;
                    // Small epochs so the controller actually steps
                    // within the short test window.
                    config.adaptive.epochCycles = 512;
                    return runWorkload(workload, config, opts);
                }});
        }
        return out;
    };

    const std::vector<SweepOutcome> serial = runSweep(jobs(), 1);
    const std::vector<SweepOutcome> parallel = runSweep(jobs(), 4);
    ASSERT_EQ(serial.size(), 3u);
    ASSERT_EQ(parallel.size(), 3u);
    for (size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(serial[i].label);
        EXPECT_FALSE(serial[i].failed) << serial[i].error;
        EXPECT_FALSE(parallel[i].failed) << parallel[i].error;
        expectResultsEqual(serial[i].result, parallel[i].result);
        // The run exercised the controller, not just carried it.
        EXPECT_GT(serial[i].result.stats.value("adaptive.epochs"), 0u);
    }
}

TEST(Sweep, OutcomesKeepSubmissionOrder)
{
    setQuiet(true);
    const std::vector<SweepOutcome> outcomes =
        runSweep(fourJobs(), 4);
    ASSERT_EQ(outcomes.size(), 4u);
    EXPECT_EQ(outcomes[0].result.workload, "gzip");
    EXPECT_EQ(outcomes[1].result.workload, "mcf");
    EXPECT_EQ(outcomes[2].result.workload, "equake");
    EXPECT_EQ(outcomes[3].result.workload, "twolf");
    for (const SweepOutcome &outcome : outcomes)
        EXPECT_GE(outcome.wallSeconds, 0.0);
}

TEST(Sweep, CapturesExceptionsPerJob)
{
    std::vector<SweepJob> jobs;
    jobs.push_back(SweepJob{"ok", [] { return RunResult{}; }});
    jobs.push_back(SweepJob{"throws", []() -> RunResult {
                                throw std::runtime_error("boom");
                            }});
    jobs.push_back(SweepJob{"ok2", [] { return RunResult{}; }});

    for (unsigned threads : {1u, 3u}) {
        const std::vector<SweepOutcome> outcomes =
            runSweep(jobs, threads);
        ASSERT_EQ(outcomes.size(), 3u);
        EXPECT_FALSE(outcomes[0].failed);
        EXPECT_TRUE(outcomes[1].failed);
        EXPECT_EQ(outcomes[1].error, "boom");
        EXPECT_FALSE(outcomes[2].failed);
    }
}

TEST(Sweep, DefaultThreadsHonoursEnvironment)
{
    char saved[64] = {0};
    if (const char *old = getenv("GRP_BENCH_THREADS"))
        snprintf(saved, sizeof(saved), "%s", old);

    setenv("GRP_BENCH_THREADS", "3", 1);
    EXPECT_EQ(defaultSweepThreads(), 3u);
    setenv("GRP_BENCH_THREADS", "0", 1);
    EXPECT_GE(defaultSweepThreads(), 1u);
    unsetenv("GRP_BENCH_THREADS");
    EXPECT_GE(defaultSweepThreads(), 1u);

    if (saved[0])
        setenv("GRP_BENCH_THREADS", saved, 1);
}

// Two registries on one thread: components registered explicitly
// into each must not cross-talk — the property the singleton removal
// bought.
TEST(Sweep, ConcurrentRegistriesAreIsolated)
{
    obs::StatRegistry first, second;
    CacheConfig config{16 * 1024, 2, 3, 4, 4};
    Cache cache_a(config, "cache", false, first);
    Cache cache_b(config, "cache", false, second);

    cache_a.insert(0x1000, false, false);
    cache_a.access(0x1000, false);
    cache_b.insert(0x2000, false, false);

    EXPECT_EQ(first.value("cache.accesses"), 1u);
    EXPECT_EQ(second.value("cache.accesses"), 0u);
    EXPECT_EQ(first.value("cache.demandFills"), 1u);
    EXPECT_EQ(second.value("cache.demandFills"), 1u);
    EXPECT_EQ(first.size(), 1u);
    EXPECT_EQ(second.size(), 1u);

    // The thread default is a third, untouched registry.
    EXPECT_EQ(obs::StatRegistry::current().find("cache"), nullptr);
}

} // namespace
} // namespace grp
