/** @file Tests over the 18 benchmark kernels and their hints. */

#include <gtest/gtest.h>

#include <map>

#include "compiler/hint_generator.hh"
#include "sim/logging.hh"
#include "workloads/interpreter.hh"
#include "workloads/kernels.hh"
#include "workloads/workload.hh"

namespace grp
{
namespace
{

class WorkloadTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }

    HintStats
    hintsFor(const std::string &name)
    {
        FunctionalMemory mem;
        auto workload = makeWorkload(name);
        Program prog = workload->build(mem, 42);
        HintTable table;
        HintGenerator generator(CompilerPolicy::Default, 1 << 20);
        return generator.run(prog, table);
    }
};

TEST_F(WorkloadTest, RegistryHasAllEighteen)
{
    const auto names = workloadNames();
    EXPECT_EQ(names.size(), 18u);
    EXPECT_EQ(names.front(), "gzip");
    EXPECT_EQ(names.back(), "sphinx");
}

TEST_F(WorkloadTest, UnknownNameIsFatal)
{
    EXPECT_THROW(makeWorkload("nosuch"), std::runtime_error);
}

TEST_F(WorkloadTest, InfoFieldsAreConsistent)
{
    for (const auto &name : workloadNames()) {
        auto workload = makeWorkload(name);
        const WorkloadInfo info = workload->info();
        EXPECT_EQ(info.name, name);
        EXPECT_FALSE(info.missCause.empty()) << name;
    }
    EXPECT_TRUE(makeWorkload("crafty")->info().negligibleL2);
    EXPECT_EQ(makeWorkload("mcf")->info().recursiveDepthOverride, 3u);
    EXPECT_TRUE(makeWorkload("swim")->info().isFloat);
    EXPECT_FALSE(makeWorkload("twolf")->info().isFloat);
}

TEST_F(WorkloadTest, TracesAreDeterministicPerSeed)
{
    for (const char *name : {"gzip", "mcf", "sphinx"}) {
        FunctionalMemory m1, m2;
        auto w1 = makeWorkload(name);
        auto w2 = makeWorkload(name);
        Program p1 = w1->build(m1, 7);
        Program p2 = w2->build(m2, 7);
        Interpreter i1(p1, m1, 7), i2(p2, m2, 7);
        TraceOp a, b;
        for (int k = 0; k < 3000; ++k) {
            ASSERT_TRUE(i1.next(a));
            ASSERT_TRUE(i2.next(b));
            ASSERT_EQ(a.kind, b.kind) << name << " op " << k;
            ASSERT_EQ(a.addr, b.addr) << name << " op " << k;
            ASSERT_EQ(a.refId, b.refId) << name << " op " << k;
        }
    }
}

TEST_F(WorkloadTest, FortranCodesHaveNoPointerHints)
{
    for (const char *name : {"wupwise", "swim", "mgrid", "applu",
                             "apsi"}) {
        const HintStats stats = hintsFor(name);
        EXPECT_EQ(stats.pointer, 0u) << name;
        EXPECT_EQ(stats.recursive, 0u) << name;
        EXPECT_GT(stats.spatial, 0u) << name;
    }
}

TEST_F(WorkloadTest, RecursiveHintsWhereThePaperHasThem)
{
    // Table 3: vpr, mcf, parser, twolf, sphinx have recursive hints.
    for (const char *name : {"vpr", "mcf", "parser", "twolf",
                             "sphinx"}) {
        EXPECT_GT(hintsFor(name).recursive, 0u) << name;
    }
    // ...and ammp / gap do not.
    EXPECT_EQ(hintsFor("ammp").recursive, 0u);
    EXPECT_EQ(hintsFor("gap").recursive, 0u);
}

TEST_F(WorkloadTest, PointerHintsForPointerCodes)
{
    for (const char *name : {"mcf", "parser", "twolf", "ammp", "gap",
                             "equake", "art"}) {
        EXPECT_GT(hintsFor(name).pointer, 0u) << name;
    }
}

TEST_F(WorkloadTest, IndirectInstructionsWhereThePaperHasThem)
{
    EXPECT_GT(hintsFor("vpr").indirect, 0u);
    EXPECT_GT(hintsFor("bzip2").indirect, 0u);
    EXPECT_GT(hintsFor("gzip").indirect, 0u);
    EXPECT_GT(hintsFor("equake").indirect, 0u);
    EXPECT_EQ(hintsFor("swim").indirect, 0u);
    EXPECT_EQ(hintsFor("mcf").indirect, 0u);
}

TEST_F(WorkloadTest, EveryWorkloadProducesMemoryTraffic)
{
    for (const auto &name : workloadNames()) {
        FunctionalMemory mem;
        auto workload = makeWorkload(name);
        Program prog = workload->build(mem, 42);
        Interpreter interp(prog, mem, 42);
        unsigned memory_ops = 0;
        TraceOp op;
        for (int k = 0; k < 20'000 && interp.next(op); ++k) {
            memory_ops += op.kind == OpKind::Load ||
                          op.kind == OpKind::Store;
        }
        EXPECT_GT(memory_ops, 1000u) << name;
    }
}

TEST_F(WorkloadTest, HeapKernelsContainRealPointers)
{
    // Pointer prefetching depends on genuine pointer bits in memory.
    for (const char *name : {"mcf", "vpr", "sphinx"}) {
        FunctionalMemory mem;
        auto workload = makeWorkload(name);
        Program prog = workload->build(mem, 42);
        bool found = false;
        for (const PtrDecl &ptr : prog.ptrs) {
            if (ptr.initial != 0) {
                found = true;
                // The initial pointer must pass the hardware test.
                EXPECT_TRUE(mem.looksLikeHeapPointer(ptr.initial))
                    << name;
            }
        }
        EXPECT_TRUE(found) << name;
    }
}

TEST_F(WorkloadTest, DistinctSeedsChangeIrregularTraces)
{
    FunctionalMemory m1, m2;
    auto w1 = makeWorkload("twolf");
    auto w2 = makeWorkload("twolf");
    Program p1 = w1->build(m1, 1);
    Program p2 = w2->build(m2, 2);
    Interpreter i1(p1, m1, 1), i2(p2, m2, 2);
    TraceOp a, b;
    bool differs = false;
    for (int k = 0; k < 5000; ++k) {
        ASSERT_TRUE(i1.next(a));
        ASSERT_TRUE(i2.next(b));
        differs = differs || a.addr != b.addr;
    }
    EXPECT_TRUE(differs);
}

} // namespace
} // namespace grp
