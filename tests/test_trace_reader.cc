/**
 * @file
 * Error-path coverage for the offline trace reader: malformed JSONL,
 * truncated records, unknown record types and hint classes. The
 * contract under test: bad lines are skipped with a "line N:" error
 * message — never a fatal — and the invariant checker still runs
 * over whatever parsed, reporting 1-based line positions.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "obs/trace_reader.hh"

using namespace grp;
using namespace grp::obs;

namespace
{

TEST(TraceReaderErrors, BadLinesSkippedWithLineNumbers)
{
    std::istringstream is(
        "{\"ev\": \"issue\", \"addr\": 64}\n"
        "{\"ev\": \"fill\", \"addr\": 64\n"       // truncated record
        "not json at all\n"                        // malformed line
        "{\"ev\": \"warp\", \"addr\": 128}\n"      // unknown type
        "{\"addr\": 192}\n"                        // missing "ev"
        "{\"ev\": \"fill\", \"addr\": 64}\n");
    const TraceParseResult result = readTrace(is);

    EXPECT_FALSE(result.openFailed);
    EXPECT_EQ(result.lines.size(), 2u);
    ASSERT_EQ(result.errors.size(), 4u);
    EXPECT_EQ(result.errors[0].rfind("line 2:", 0), 0u);
    EXPECT_EQ(result.errors[1].rfind("line 3:", 0), 0u);
    EXPECT_EQ(result.errors[2].rfind("line 4:", 0), 0u);
    EXPECT_NE(result.errors[2].find("warp"), std::string::npos);
    EXPECT_EQ(result.errors[3].rfind("line 5:", 0), 0u);
    EXPECT_NE(result.errors[3].find("ev"), std::string::npos);

    // The surviving records are the issue/fill pair for block 64.
    EXPECT_EQ(result.lines[0].event, TraceEvent::Issue);
    EXPECT_EQ(result.lines[1].event, TraceEvent::Fill);
}

TEST(TraceReaderErrors, UnknownHintClassReportsLine)
{
    std::istringstream is(
        "{\"ev\": \"issue\", \"addr\": 64, \"hint\": \"psychic\"}\n");
    const TraceParseResult result = readTrace(is);
    EXPECT_TRUE(result.lines.empty());
    ASSERT_EQ(result.errors.size(), 1u);
    EXPECT_EQ(result.errors[0].rfind("line 1:", 0), 0u);
    EXPECT_NE(result.errors[0].find("hint"), std::string::npos);
}

TEST(TraceReaderErrors, EmptyLinesKeepNumberingHonest)
{
    std::istringstream is(
        "\n"
        "\n"
        "garbage\n");
    const TraceParseResult result = readTrace(is);
    ASSERT_EQ(result.errors.size(), 1u);
    EXPECT_EQ(result.errors[0].rfind("line 3:", 0), 0u);
}

TEST(TraceReaderErrors, MissingFileSetsOpenFailed)
{
    const TraceParseResult result =
        readTraceFile("/nonexistent/grp-trace-reader-test.jsonl");
    EXPECT_TRUE(result.openFailed);
    ASSERT_EQ(result.errors.size(), 1u);
    EXPECT_NE(result.errors[0].find("cannot open"), std::string::npos);
}

TEST(TraceReaderErrors, AnalyzerReportsLineNumbersNotAborts)
{
    // A use without a fill and a double fill: both must surface as
    // positioned violations, and the analysis must still complete.
    std::istringstream is(
        "{\"ev\": \"issue\", \"addr\": 64, \"hint\": \"spatial\"}\n"
        "{\"ev\": \"firstUse\", \"addr\": 64}\n"
        "{\"ev\": \"issue\", \"addr\": 128, \"hint\": \"spatial\"}\n"
        "{\"ev\": \"fill\", \"addr\": 128, \"hint\": \"spatial\"}\n"
        "{\"ev\": \"fill\", \"addr\": 128, \"hint\": \"spatial\"}\n");
    const TraceParseResult parsed = readTrace(is);
    ASSERT_TRUE(parsed.errors.empty());
    const TraceAnalysis analysis = analyzeTrace(parsed.lines);

    ASSERT_EQ(analysis.violations.size(), 2u);
    EXPECT_EQ(analysis.violations[0].line, 2u);
    EXPECT_NE(analysis.violations[0].message.find("in flight"),
              std::string::npos);
    EXPECT_EQ(analysis.violations[1].line, 5u);
    EXPECT_NE(analysis.violations[1].message.find("filled twice"),
              std::string::npos);
    EXPECT_EQ(analysis.records, 5u);
}

} // namespace
