/** @file Error-path tests for atomic artefact publication. */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/atomic_file.hh"
#include "sim/logging.hh"

namespace grp
{
namespace
{

namespace fs = std::filesystem;

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream file(path);
    std::stringstream ss;
    ss << file.rdbuf();
    return ss.str();
}

class AtomicFileTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
};

TEST_F(AtomicFileTest, WritesAndPublishes)
{
    const std::string path = tempPath("atomic_ok.txt");
    EXPECT_TRUE(obs::atomicWriteFile(
        path, [](std::ostream &os) { os << "payload"; }, "test"));
    EXPECT_EQ(slurp(path), "payload");
    EXPECT_FALSE(fs::exists(path + ".tmp"));
    std::remove(path.c_str());
}

TEST_F(AtomicFileTest, MissingParentFailsWithoutResidue)
{
    // (Not an unwritable-permissions test: these tests run as root,
    // where mode bits don't deny.) A nonexistent parent is the
    // portable "cannot open the temporary" failure.
    const std::string path =
        tempPath("no_such_dir/deeper/atomic.txt");
    EXPECT_FALSE(obs::atomicWriteFile(
        path, [](std::ostream &os) { os << "payload"; }, "test"));
    EXPECT_FALSE(fs::exists(path));
    EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST_F(AtomicFileTest, EmitFailureCleansTmpAndKeepsOldFile)
{
    const std::string path = tempPath("atomic_emitfail.txt");
    ASSERT_TRUE(obs::atomicWriteFile(
        path, [](std::ostream &os) { os << "original"; }, "test"));
    // A failing emit (stream error mid-write) must not publish and
    // must not leave "<path>.tmp" behind — and the previously
    // published content must survive untouched.
    EXPECT_FALSE(obs::atomicWriteFile(
        path,
        [](std::ostream &os) {
            os << "partial garbage";
            os.setstate(std::ios::failbit);
        },
        "test"));
    EXPECT_EQ(slurp(path), "original");
    EXPECT_FALSE(fs::exists(path + ".tmp"));
    std::remove(path.c_str());
}

TEST_F(AtomicFileTest, RenameTargetCollisionFailsCleanly)
{
    // A directory squatting on the target path makes the final
    // rename fail after a successful tmp write; the tmp must be
    // cleaned up rather than stranded next to the artefact.
    const std::string path = tempPath("atomic_dir_target");
    fs::create_directory(path);
    ASSERT_TRUE(fs::is_directory(path));
    EXPECT_FALSE(obs::atomicWriteFile(
        path, [](std::ostream &os) { os << "payload"; }, "test"));
    EXPECT_TRUE(fs::is_directory(path)); // Victim left alone.
    EXPECT_FALSE(fs::exists(path + ".tmp"));
    fs::remove(path);
}

TEST_F(AtomicFileTest, PublishTempFileMovesContent)
{
    const std::string tmp = tempPath("atomic_pub.tmp");
    const std::string path = tempPath("atomic_pub.txt");
    {
        std::ofstream os(tmp);
        os << "streamed";
    }
    EXPECT_TRUE(obs::publishTempFile(tmp, path, "test"));
    EXPECT_EQ(slurp(path), "streamed");
    EXPECT_FALSE(fs::exists(tmp));
    std::remove(path.c_str());
}

TEST_F(AtomicFileTest, PublishTempFileFailureCleansTmp)
{
    const std::string tmp = tempPath("atomic_pubfail.tmp");
    const std::string path = tempPath("atomic_pubfail_target");
    {
        std::ofstream os(tmp);
        os << "streamed";
    }
    fs::create_directory(path); // Rename over a directory fails.
    EXPECT_FALSE(obs::publishTempFile(tmp, path, "test"));
    EXPECT_FALSE(fs::exists(tmp));
    fs::remove(path);
}

TEST_F(AtomicFileTest, PublishAfterFailureLeavesNoPartialFile)
{
    // The sequence a crashing exporter would produce: a failed
    // atomic write followed by a retry must behave as if the failure
    // never happened — no partial artefact visible in between.
    const std::string path = tempPath("atomic_retry.txt");
    EXPECT_FALSE(obs::atomicWriteFile(
        path,
        [](std::ostream &os) { os.setstate(std::ios::badbit); },
        "test"));
    EXPECT_FALSE(fs::exists(path));
    EXPECT_TRUE(obs::atomicWriteFile(
        path, [](std::ostream &os) { os << "second try"; }, "test"));
    EXPECT_EQ(slurp(path), "second try");
    std::remove(path.c_str());
}

} // namespace
} // namespace grp
